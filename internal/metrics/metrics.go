// Package metrics is the simulator-wide observability registry: named
// counters, gauges, and fixed-bucket histograms with near-zero overhead
// when disabled, plus a sampled structured-event stream (events.go) and
// text/JSON/Prometheus exporters (export.go).
//
// The design mirrors the paper's experimental method: every aggregate in
// Tables 1-13 and Figures 1-9 is a sum over per-fetch events, and this
// package exposes the intermediate sums (per-set cache misses, CLB
// eviction churn, refill-cycle distributions, per-line fetch heatmaps)
// that the final Stats struct collapses away.
//
// Disabled instrumentation is free by construction: a nil *Registry
// returns nil instruments, and every instrument method is a no-op on a
// nil receiver, so hot paths guard with a single pointer test and
// allocate nothing (verified by TestDisabledInstrumentsAllocFree).
// The package depends only on the standard library.
package metrics

import (
	"fmt"
	"sort"
	"strconv"
	"sync"
)

// Counter is a monotonically increasing uint64.
type Counter struct {
	v uint64
}

// Inc adds one. It is a no-op on a nil receiver.
func (c *Counter) Inc() {
	if c != nil {
		c.v++
	}
}

// Add adds n. It is a no-op on a nil receiver.
func (c *Counter) Add(n uint64) {
	if c != nil {
		c.v += n
	}
}

// Value returns the current count; zero on a nil receiver.
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v
}

// Gauge is a settable float64.
type Gauge struct {
	v float64
}

// Set records v. It is a no-op on a nil receiver.
func (g *Gauge) Set(v float64) {
	if g != nil {
		g.v = v
	}
}

// Value returns the last set value; zero on a nil receiver.
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return g.v
}

// Histogram counts observations into fixed buckets. Bucket i counts
// observations v with bounds[i-1] < v <= bounds[i] (Prometheus "le"
// semantics); one extra overflow bucket catches v > bounds[len-1].
type Histogram struct {
	bounds []float64 // upper bounds, ascending
	counts []uint64  // len(bounds)+1; last is the +Inf overflow
	sum    float64
	n      uint64
}

// Observe records one value. It is a no-op on a nil receiver.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	// Linear scan: bucket lists are short (≤ ~20) and this avoids the
	// sort.SearchFloat64s closure allocation on the hot path.
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.counts[i]++
	h.sum += v
	h.n++
}

// Count returns the number of observations; zero on a nil receiver.
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.n
}

// Sum returns the sum of observed values; zero on a nil receiver.
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return h.sum
}

// Bounds returns the bucket upper bounds (not including +Inf).
func (h *Histogram) Bounds() []float64 {
	if h == nil {
		return nil
	}
	return h.bounds
}

// BucketCounts returns the per-bucket (non-cumulative) counts; the final
// element is the +Inf overflow bucket.
func (h *Histogram) BucketCounts() []uint64 {
	if h == nil {
		return nil
	}
	return h.counts
}

// ExpBuckets returns n upper bounds start, start*factor, ... — the usual
// shape for cycle-count distributions.
func ExpBuckets(start, factor float64, n int) []float64 {
	out := make([]float64, n)
	v := start
	for i := range out {
		out[i] = v
		v *= factor
	}
	return out
}

// LinearBuckets returns n upper bounds start, start+step, ....
func LinearBuckets(start, step float64, n int) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = start + float64(i)*step
	}
	return out
}

// CounterVec is a family of counters distinguished by one label
// (e.g. per-cache-set miss counters labelled by set index). Children are
// created on first use and exported in label-sorted order.
type CounterVec struct {
	label    string
	index    map[string]*Counter
	order    []string
	numLabel bool // every label value so far parsed as an integer
}

// With returns the child counter for the label value, creating it if
// needed. It returns nil (a no-op counter) on a nil receiver, so callers
// may cache children unconditionally.
func (v *CounterVec) With(value string) *Counter {
	if v == nil {
		return nil
	}
	if c, ok := v.index[value]; ok {
		return c
	}
	c := &Counter{}
	v.index[value] = c
	v.order = append(v.order, value)
	if _, err := strconv.Atoi(value); err != nil {
		v.numLabel = false
	}
	return c
}

// WithInt is With for integer label values.
func (v *CounterVec) WithInt(value int) *Counter {
	if v == nil {
		return nil
	}
	return v.With(strconv.Itoa(value))
}

// labels returns the label values, numerically sorted when every value is
// an integer, lexically otherwise.
func (v *CounterVec) labels() []string {
	out := append([]string(nil), v.order...)
	if v.numLabel {
		sort.Slice(out, func(i, j int) bool {
			a, _ := strconv.Atoi(out[i])
			b, _ := strconv.Atoi(out[j])
			return a < b
		})
	} else {
		sort.Strings(out)
	}
	return out
}

// GaugeVec is a family of gauges distinguished by one label (e.g.
// per-backend up/down state labelled by node address). Children are
// created on first use and exported in label-sorted order.
type GaugeVec struct {
	label    string
	index    map[string]*Gauge
	order    []string
	numLabel bool // every label value so far parsed as an integer
}

// With returns the child gauge for the label value, creating it if
// needed. It returns nil (a no-op gauge) on a nil receiver, so callers
// may cache children unconditionally.
func (v *GaugeVec) With(value string) *Gauge {
	if v == nil {
		return nil
	}
	if g, ok := v.index[value]; ok {
		return g
	}
	g := &Gauge{}
	v.index[value] = g
	v.order = append(v.order, value)
	if _, err := strconv.Atoi(value); err != nil {
		v.numLabel = false
	}
	return g
}

// labels returns the label values, numerically sorted when every value is
// an integer, lexically otherwise.
func (v *GaugeVec) labels() []string {
	out := append([]string(nil), v.order...)
	if v.numLabel {
		sort.Slice(out, func(i, j int) bool {
			a, _ := strconv.Atoi(out[i])
			b, _ := strconv.Atoi(out[j])
			return a < b
		})
	} else {
		sort.Strings(out)
	}
	return out
}

// kind discriminates registered instruments for export.
type kind uint8

const (
	kindCounter kind = iota
	kindGauge
	kindHistogram
	kindCounterVec
	kindGaugeVec
)

type instrument struct {
	name string
	help string
	kind kind
	c    *Counter
	g    *Gauge
	h    *Histogram
	vec  *CounterVec
	gvec *GaugeVec
}

// Registry holds a named set of instruments. The zero Registry is not
// usable; call New. A nil *Registry is the disabled state: every
// constructor returns a nil instrument whose methods no-op.
type Registry struct {
	mu    sync.Mutex
	order []*instrument
	index map[string]*instrument
}

// New returns an empty registry.
func New() *Registry {
	return &Registry{index: make(map[string]*instrument)}
}

// lookup returns the existing instrument of the given name and kind, or
// registers the one built by mk. Re-registration with the same name is
// idempotent (repeated core.Compare calls over one registry accumulate
// into the same counters); a name clash across kinds panics, since it is
// always a programming error.
func (r *Registry) lookup(name, help string, k kind, mk func() *instrument) *instrument {
	r.mu.Lock()
	defer r.mu.Unlock()
	if in, ok := r.index[name]; ok {
		if in.kind != k {
			panic(fmt.Sprintf("metrics: %q re-registered with a different type", name))
		}
		return in
	}
	in := mk()
	in.name, in.help, in.kind = name, help, k
	r.index[name] = in
	r.order = append(r.order, in)
	return in
}

// Counter returns the named counter, registering it on first use.
// Returns nil on a nil registry.
func (r *Registry) Counter(name, help string) *Counter {
	if r == nil {
		return nil
	}
	return r.lookup(name, help, kindCounter, func() *instrument {
		return &instrument{c: &Counter{}}
	}).c
}

// Gauge returns the named gauge, registering it on first use.
func (r *Registry) Gauge(name, help string) *Gauge {
	if r == nil {
		return nil
	}
	return r.lookup(name, help, kindGauge, func() *instrument {
		return &instrument{g: &Gauge{}}
	}).g
}

// Histogram returns the named histogram with the given bucket upper
// bounds, registering it on first use (later calls keep the first
// bounds).
func (r *Registry) Histogram(name, help string, bounds []float64) *Histogram {
	if r == nil {
		return nil
	}
	return r.lookup(name, help, kindHistogram, func() *instrument {
		b := append([]float64(nil), bounds...)
		sort.Float64s(b)
		return &instrument{h: &Histogram{bounds: b, counts: make([]uint64, len(b)+1)}}
	}).h
}

// CounterVec returns the named counter family keyed by label.
func (r *Registry) CounterVec(name, help, label string) *CounterVec {
	if r == nil {
		return nil
	}
	return r.lookup(name, help, kindCounterVec, func() *instrument {
		return &instrument{vec: &CounterVec{label: label, index: make(map[string]*Counter), numLabel: true}}
	}).vec
}

// GaugeVec returns the named gauge family keyed by label.
func (r *Registry) GaugeVec(name, help, label string) *GaugeVec {
	if r == nil {
		return nil
	}
	return r.lookup(name, help, kindGaugeVec, func() *instrument {
		return &instrument{gvec: &GaugeVec{label: label, index: make(map[string]*Gauge), numLabel: true}}
	}).gvec
}

// snapshot returns the registered instruments in registration order.
func (r *Registry) snapshot() []*instrument {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]*instrument(nil), r.order...)
}
