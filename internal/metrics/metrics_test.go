package metrics

import (
	"bufio"
	"bytes"
	"encoding/json"
	"flag"
	"math"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
)

var update = flag.Bool("update", false, "rewrite golden files")

// TestDisabledInstrumentsAllocFree is the contract the hot paths rely on:
// a nil registry hands out nil instruments whose methods neither allocate
// nor panic. A regression here silently taxes every simulated fetch.
func TestDisabledInstrumentsAllocFree(t *testing.T) {
	var r *Registry // disabled
	c := r.Counter("c", "")
	g := r.Gauge("g", "")
	h := r.Histogram("h", "", LinearBuckets(1, 1, 4))
	v := r.CounterVec("v", "", "set")
	child := v.With("3")
	if c != nil || g != nil || h != nil || v != nil || child != nil {
		t.Fatal("nil registry must return nil instruments")
	}
	if n := testing.AllocsPerRun(1000, func() {
		c.Inc()
		c.Add(7)
		g.Set(1.5)
		h.Observe(3)
		child.Inc()
		v.WithInt(9).Inc()
	}); n != 0 {
		t.Errorf("disabled instruments allocated %v times per run, want 0", n)
	}
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 || h.Sum() != 0 {
		t.Error("nil instruments must read as zero")
	}
	if h.Bounds() != nil || h.BucketCounts() != nil {
		t.Error("nil histogram must expose nil buckets")
	}
}

// TestEnabledInstrumentsAllocFree: the live update paths must not
// allocate either — only registration may.
func TestEnabledInstrumentsAllocFree(t *testing.T) {
	r := New()
	c := r.Counter("c", "")
	g := r.Gauge("g", "")
	h := r.Histogram("h", "", ExpBuckets(1, 2, 10))
	child := r.CounterVec("v", "", "set").WithInt(5)
	if n := testing.AllocsPerRun(1000, func() {
		c.Inc()
		g.Set(2.5)
		h.Observe(700) // overflow bucket, worst-case scan
		child.Inc()
	}); n != 0 {
		t.Errorf("enabled instrument updates allocated %v times per run, want 0", n)
	}
}

func TestHistogramBucketBoundaries(t *testing.T) {
	r := New()
	h := r.Histogram("h", "", []float64{1, 2, 4})
	// Prometheus le semantics: a value equal to an upper bound lands in
	// that bucket, not the next.
	for _, v := range []float64{0.5, 1, 1.5, 2, 3, 4, 4.5, 100} {
		h.Observe(v)
	}
	want := []uint64{2, 2, 2, 2} // (..1], (1..2], (2..4], (4..+Inf)
	if got := h.BucketCounts(); !reflect.DeepEqual(got, want) {
		t.Errorf("bucket counts = %v, want %v", got, want)
	}
	if h.Count() != 8 {
		t.Errorf("count = %d, want 8", h.Count())
	}
	if got, want := h.Sum(), 0.5+1+1.5+2+3+4+4.5+100; math.Abs(got-want) > 1e-9 {
		t.Errorf("sum = %g, want %g", got, want)
	}
}

func TestBucketBuilders(t *testing.T) {
	if got, want := ExpBuckets(1, 4, 4), []float64{1, 4, 16, 64}; !reflect.DeepEqual(got, want) {
		t.Errorf("ExpBuckets = %v, want %v", got, want)
	}
	if got, want := LinearBuckets(4, 4, 4), []float64{4, 8, 12, 16}; !reflect.DeepEqual(got, want) {
		t.Errorf("LinearBuckets = %v, want %v", got, want)
	}
}

// TestRegistryIdempotent: re-registration must return the same instrument
// so repeated core.Compare runs accumulate into one set of counters.
func TestRegistryIdempotent(t *testing.T) {
	r := New()
	a := r.Counter("x", "first help")
	a.Inc()
	b := r.Counter("x", "second help ignored")
	if a != b {
		t.Fatal("same name+kind must return the same counter")
	}
	b.Inc()
	if a.Value() != 2 {
		t.Errorf("accumulated value = %d, want 2", a.Value())
	}
	defer func() {
		if recover() == nil {
			t.Error("cross-kind name reuse must panic")
		}
	}()
	r.Gauge("x", "")
}

func TestCounterVecLabelOrder(t *testing.T) {
	r := New()
	num := r.CounterVec("num", "", "set")
	for _, v := range []int{10, 2, 1} {
		num.WithInt(v).Inc()
	}
	if got, want := num.labels(), []string{"1", "2", "10"}; !reflect.DeepEqual(got, want) {
		t.Errorf("numeric labels = %v, want %v", got, want)
	}
	mixed := r.CounterVec("mixed", "", "class")
	mixed.With("load").Inc()
	mixed.With("alu").Inc()
	mixed.With("2").Inc()
	if got, want := mixed.labels(), []string{"2", "alu", "load"}; !reflect.DeepEqual(got, want) {
		t.Errorf("mixed labels = %v, want %v", got, want)
	}
}

// goldenRegistry builds the deterministic registry behind the export
// golden files.
func goldenRegistry() *Registry {
	r := New()
	c := r.Counter("ccrp_test_fetches_total", "instruction fetches")
	c.Add(357007)
	r.Gauge("ccrp_test_ratio", "a derived ratio").Set(0.84210526)
	h := r.Histogram("ccrp_test_refill_cycles", "refill cycle distribution", LinearBuckets(4, 4, 4))
	for _, v := range []float64{3, 4, 9, 17, 99} {
		h.Observe(v)
	}
	vec := r.CounterVec("ccrp_test_set_misses_total", "misses by set", "set")
	vec.WithInt(0).Add(7)
	vec.WithInt(2).Add(3)
	vec.WithInt(10).Inc()
	return r
}

func TestPrometheusGolden(t *testing.T) {
	var b bytes.Buffer
	if err := goldenRegistry().WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "golden.prom", b.String())
}

func TestTableGolden(t *testing.T) {
	var b bytes.Buffer
	if err := goldenRegistry().WriteTable(&b); err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "golden.table", b.String())
}

func checkGolden(t *testing.T, name, got string) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (run with -update): %v", err)
	}
	if got != string(want) {
		t.Errorf("%s output differs from %s:\ngot:\n%s\nwant:\n%s", name, path, got, want)
	}
}

// TestJSONExportRoundTrip: the JSON export must parse back and carry the
// same numbers, cumulative histogram buckets included.
func TestJSONExportRoundTrip(t *testing.T) {
	var b bytes.Buffer
	if err := goldenRegistry().WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Metrics []struct {
			Name    string   `json:"name"`
			Type    string   `json:"type"`
			Value   *float64 `json:"value"`
			Count   *uint64  `json:"count"`
			Sum     *float64 `json:"sum"`
			Buckets []struct {
				LE    float64 `json:"le"`
				Count uint64  `json:"count"`
				Inf   bool    `json:"inf"`
			} `json:"buckets"`
			Labels map[string]uint64 `json:"labels"`
		} `json:"metrics"`
	}
	if err := json.Unmarshal(b.Bytes(), &doc); err != nil {
		t.Fatalf("export is not valid JSON: %v", err)
	}
	if len(doc.Metrics) != 4 {
		t.Fatalf("got %d metrics, want 4", len(doc.Metrics))
	}
	byName := map[string]int{}
	for i, m := range doc.Metrics {
		byName[m.Name] = i
	}
	c := doc.Metrics[byName["ccrp_test_fetches_total"]]
	if c.Value == nil || *c.Value != 357007 {
		t.Errorf("counter value = %v, want 357007", c.Value)
	}
	h := doc.Metrics[byName["ccrp_test_refill_cycles"]]
	if h.Count == nil || *h.Count != 5 {
		t.Errorf("histogram count = %v, want 5", h.Count)
	}
	if n := len(h.Buckets); n != 5 { // 4 bounds + Inf
		t.Fatalf("got %d buckets, want 5", n)
	}
	if last := h.Buckets[4]; !last.Inf || last.Count != 5 {
		t.Errorf("+Inf bucket = %+v, want cumulative 5", last)
	}
	// Cumulative: bounds 4,8,12,16 over observations 3,4,9,17,99 — the
	// 17 and 99 both exceed le=16 and only appear under +Inf.
	for i, want := range []uint64{2, 2, 3, 3} {
		if h.Buckets[i].Count != want {
			t.Errorf("bucket le=%g cumulative = %d, want %d", h.Buckets[i].LE, h.Buckets[i].Count, want)
		}
	}
	v := doc.Metrics[byName["ccrp_test_set_misses_total"]]
	if v.Labels["set=0"] != 7 || v.Labels["set=2"] != 3 || v.Labels["set=10"] != 1 {
		t.Errorf("vec labels = %v", v.Labels)
	}
}

func TestWriteFormat(t *testing.T) {
	r := goldenRegistry()
	for _, f := range Formats() {
		if err := r.WriteFormat(&bytes.Buffer{}, f); err != nil {
			t.Errorf("WriteFormat(%q): %v", f, err)
		}
	}
	if err := r.WriteFormat(&bytes.Buffer{}, "yaml"); err == nil {
		t.Error("unknown format must error")
	}
}

func TestJSONLSinkAndSampling(t *testing.T) {
	var b bytes.Buffer
	sink := &SampledSink{Inner: NewJSONLSink(&b), Every: 4}
	for i := 0; i < 12; i++ {
		sink.Emit(Event{Type: EvFetch, Seq: uint64(i), PC: uint32(4 * i), Line: 0, Set: -1})
	}
	sink.Emit(Event{Type: EvICacheMiss, Seq: 12, PC: 48, Line: 1, Set: 1})
	sink.Emit(Event{Type: EvRefillEnd, Seq: 12, PC: 48, Line: 1, Set: -1, Cycles: 19})
	if err := sink.Close(); err != nil {
		t.Fatal(err)
	}
	var events []Event
	sc := bufio.NewScanner(&b)
	for sc.Scan() {
		var e Event
		if err := json.Unmarshal(sc.Bytes(), &e); err != nil {
			t.Fatalf("bad JSONL line %q: %v", sc.Text(), err)
		}
		events = append(events, e)
	}
	// 12 fetches sampled 1-in-4 -> 3, plus the 2 structural events.
	if len(events) != 5 {
		t.Fatalf("got %d events, want 5", len(events))
	}
	fetches := 0
	for _, e := range events {
		if e.Type == EvFetch {
			fetches++
		}
	}
	if fetches != 3 {
		t.Errorf("sampled fetches = %d, want 3", fetches)
	}
	last := events[len(events)-1]
	if last.Type != EvRefillEnd || last.Cycles != 19 || last.Line != 1 || last.Set != -1 {
		t.Errorf("refill_end round-trip = %+v", last)
	}
}

func TestPrometheusShape(t *testing.T) {
	var b bytes.Buffer
	if err := goldenRegistry().WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# TYPE ccrp_test_fetches_total counter",
		"# TYPE ccrp_test_refill_cycles histogram",
		`ccrp_test_refill_cycles_bucket{le="+Inf"} 5`,
		"ccrp_test_refill_cycles_sum 132",
		"ccrp_test_refill_cycles_count 5",
		`ccrp_test_set_misses_total{set="0"} 7`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("Prometheus output missing %q", want)
		}
	}
}
