package metrics

import (
	"runtime"
)

// RuntimeStats is the process-level telemetry collector: Go runtime
// health (GC pauses, heap occupancy, goroutine count, GOMAXPROCS)
// registered as gauges so a /metrics scrape can tell GC stalls and
// goroutine leaks apart from genuine serving latency. Collect is cheap
// enough to run per scrape; it is not wired into any hot path.
type RuntimeStats struct {
	goroutines   *Gauge
	gomaxprocs   *Gauge
	heapAlloc    *Gauge
	heapSys      *Gauge
	heapObjects  *Gauge
	nextGC       *Gauge
	gcCycles     *Gauge
	gcPauseTotal *Gauge
	gcPauseLast  *Gauge
}

// NewRuntimeStats registers the runtime gauges on r. Returns nil on a nil
// registry; Collect on a nil *RuntimeStats is a no-op, matching the
// package's disabled-is-free convention.
func NewRuntimeStats(r *Registry) *RuntimeStats {
	if r == nil {
		return nil
	}
	return &RuntimeStats{
		goroutines:   r.Gauge("go_goroutines", "goroutines currently live"),
		gomaxprocs:   r.Gauge("go_gomaxprocs", "GOMAXPROCS at last collect"),
		heapAlloc:    r.Gauge("go_heap_alloc_bytes", "bytes of allocated heap objects"),
		heapSys:      r.Gauge("go_heap_sys_bytes", "heap memory obtained from the OS"),
		heapObjects:  r.Gauge("go_heap_objects", "allocated heap objects"),
		nextGC:       r.Gauge("go_next_gc_bytes", "heap size target of the next GC cycle"),
		gcCycles:     r.Gauge("go_gc_cycles_total", "completed GC cycles"),
		gcPauseTotal: r.Gauge("go_gc_pause_seconds_total", "cumulative stop-the-world pause time"),
		gcPauseLast:  r.Gauge("go_gc_last_pause_seconds", "most recent stop-the-world pause"),
	}
}

// Collect refreshes every runtime gauge. ReadMemStats stops the world for
// microseconds; callers run it per scrape, not per request.
func (s *RuntimeStats) Collect() {
	if s == nil {
		return
	}
	var m runtime.MemStats
	runtime.ReadMemStats(&m)
	s.goroutines.Set(float64(runtime.NumGoroutine()))
	s.gomaxprocs.Set(float64(runtime.GOMAXPROCS(0)))
	s.heapAlloc.Set(float64(m.HeapAlloc))
	s.heapSys.Set(float64(m.HeapSys))
	s.heapObjects.Set(float64(m.HeapObjects))
	s.nextGC.Set(float64(m.NextGC))
	s.gcCycles.Set(float64(m.NumGC))
	s.gcPauseTotal.Set(float64(m.PauseTotalNs) / 1e9)
	if m.NumGC > 0 {
		s.gcPauseLast.Set(float64(m.PauseNs[(m.NumGC+255)%256]) / 1e9)
	}
}
