package metrics

import (
	"bytes"
	"strings"
	"testing"
)

// hostileRegistry carries every character the exposition format must
// escape: backslashes and newlines in HELP text, plus quotes, newlines,
// and backslashes in label values.
func hostileRegistry() *Registry {
	r := New()
	r.Counter("ccrp_test_hostile_total",
		"line one\nline two with a \\ backslash").Add(3)
	vec := r.CounterVec("ccrp_test_hostile_labels_total",
		"labels with \\ and\nnewlines", "path")
	vec.With(`/v1/with "quotes"`).Add(1)
	vec.With("multi\nline").Add(2)
	vec.With(`back\slash`).Add(4)
	return r
}

// TestPrometheusEscapeGolden pins the exposition-format escaping:
// \\ and \n in HELP lines, \\ \n and \" in label values. A regression
// here silently corrupts every scrape that carries a hostile name.
func TestPrometheusEscapeGolden(t *testing.T) {
	var b bytes.Buffer
	if err := hostileRegistry().WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "escape.prom", b.String())
}

// TestPrometheusEscapeProperties checks the invariants independent of the
// golden bytes: one logical line per sample, no raw control characters,
// every escaped sequence present.
func TestPrometheusEscapeProperties(t *testing.T) {
	var b bytes.Buffer
	if err := hostileRegistry().WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, line := range strings.Split(strings.TrimSuffix(out, "\n"), "\n") {
		if strings.HasPrefix(line, "#") {
			continue
		}
		// A sample line must parse as name{...} value: a raw newline in a
		// label value would have split it and left a fragment without a
		// metric-name prefix.
		if !strings.HasPrefix(line, "ccrp_test_hostile") {
			t.Errorf("exposition line %q escaped its metric (raw newline leak?)", line)
		}
	}
	for _, want := range []string{
		`line one\nline two with a \\ backslash`,
		`path="/v1/with \"quotes\""`,
		`path="multi\nline"`,
		`path="back\\slash"`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition output missing %q:\n%s", want, out)
		}
	}
}
