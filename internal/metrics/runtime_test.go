package metrics

import (
	"bytes"
	"strings"
	"testing"
)

func TestRuntimeStatsCollect(t *testing.T) {
	r := New()
	rt := NewRuntimeStats(r)
	rt.Collect()
	if rt.goroutines.Value() < 1 {
		t.Errorf("go_goroutines = %g, want >= 1", rt.goroutines.Value())
	}
	if rt.gomaxprocs.Value() < 1 {
		t.Errorf("go_gomaxprocs = %g, want >= 1", rt.gomaxprocs.Value())
	}
	if rt.heapAlloc.Value() <= 0 {
		t.Errorf("go_heap_alloc_bytes = %g, want > 0", rt.heapAlloc.Value())
	}
	var b bytes.Buffer
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{
		"go_goroutines", "go_gomaxprocs", "go_heap_alloc_bytes",
		"go_gc_cycles_total", "go_gc_pause_seconds_total",
	} {
		if !strings.Contains(b.String(), name+" ") {
			t.Errorf("exposition missing %s", name)
		}
	}
}

func TestRuntimeStatsDisabled(t *testing.T) {
	var r *Registry
	rt := NewRuntimeStats(r)
	if rt != nil {
		t.Fatal("nil registry must yield a nil collector")
	}
	rt.Collect() // must not panic
}
