package metrics

import "fmt"

// Merge folds every instrument of src into r, registering missing names
// on the fly: counters and counter-vector children add their counts,
// histograms add their per-bucket counts and sums (bucket geometry must
// match), and gauges take src's value. Merging the per-worker registries
// of a parallel sweep into one target in worker order therefore yields
// exactly the counter and histogram totals a sequential run would have
// produced; gauges — per-run summary values by nature — keep the
// last-merged worker's reading.
//
// Merge must not run concurrently with writers to either registry; the
// sweep engine calls it only after its worker pool has quiesced. A name
// registered with different kinds or histogram bounds in the two
// registries panics, as re-registration clashes always do.
func (r *Registry) Merge(src *Registry) {
	if r == nil || src == nil {
		return
	}
	for _, in := range src.snapshot() {
		switch in.kind {
		case kindCounter:
			r.Counter(in.name, in.help).Add(in.c.Value())
		case kindGauge:
			r.Gauge(in.name, in.help).Set(in.g.Value())
		case kindHistogram:
			h := r.Histogram(in.name, in.help, in.h.bounds)
			if len(h.bounds) != len(in.h.bounds) {
				panic(fmt.Sprintf("metrics: %q merged with different bucket count", in.name))
			}
			for i, b := range h.bounds {
				if b != in.h.bounds[i] {
					panic(fmt.Sprintf("metrics: %q merged with different bucket bounds", in.name))
				}
			}
			for i, c := range in.h.counts {
				h.counts[i] += c
			}
			h.sum += in.h.sum
			h.n += in.h.n
		case kindCounterVec:
			vec := r.CounterVec(in.name, in.help, in.vec.label)
			for _, lv := range in.vec.order {
				vec.With(lv).Add(in.vec.index[lv].Value())
			}
		case kindGaugeVec:
			vec := r.GaugeVec(in.name, in.help, in.gvec.label)
			for _, lv := range in.gvec.order {
				vec.With(lv).Set(in.gvec.index[lv].Value())
			}
		}
	}
}
