package metrics

import (
	"bufio"
	"encoding/json"
	"io"
	"sync"
)

// Standard event types emitted by the instrumented simulator. Fetch
// events fire per instruction and are the ones worth sampling; the
// structural events (misses, refills, LAT fetches) are rare enough to
// keep unsampled.
const (
	EvFetch       = "fetch"        // one instruction fetch
	EvICacheMiss  = "icache_miss"  // instruction cache miss
	EvCLBHit      = "clb_hit"      // CLB probe hit
	EvCLBMiss     = "clb_miss"     // CLB probe miss (LAT fetch follows)
	EvCLBEvict    = "clb_evict"    // CLB replaced a valid entry
	EvLATFetch    = "lat_fetch"    // LAT entry read from instruction memory
	EvRefillStart = "refill_start" // line refill begins (line, stored bytes)
	EvRefillEnd   = "refill_end"   // line refill completes (cycle cost)
)

// EvHTTP is the access-log event emitted by the ccrpd server for every
// completed request; it flows through the same sink machinery (JSONL
// files, SyncSink serialization) as the simulator events.
const EvHTTP = "http_request"

// Event is one structured trace record. PC is always present (address 0
// is a real fetch address); Line and Set are -1 when not meaningful for
// the event type, and the remaining zero fields are omitted.
type Event struct {
	Type   string `json:"type"`
	Seq    uint64 `json:"seq"`              // instruction index within the run
	PC     uint32 `json:"pc"`               // fetch address
	Line   int    `json:"line"`             // ROM line index, -1 when n/a
	Set    int    `json:"set"`              // cache set index, -1 when n/a
	Age    uint64 `json:"age,omitempty"`    // eviction age in probes (clb_evict)
	Cycles uint64 `json:"cycles,omitempty"` // cost in cycles (refill_end, lat_fetch)
	Bytes  int    `json:"bytes,omitempty"`  // stored bytes moved (refill_start, lat_fetch)

	// HTTP access-log fields, set only on EvHTTP events (Line and Set
	// are -1 there; PC is unused and stays 0).
	Method string `json:"method,omitempty"` // request method
	Path   string `json:"path,omitempty"`   // request path
	Status int    `json:"status,omitempty"` // response status code
	DurUS  uint64 `json:"dur_us,omitempty"` // handler wall time in microseconds
	Err    string `json:"err,omitempty"`    // API error code for non-2xx responses
	Trace  string `json:"trace,omitempty"`  // request trace id (matches X-Ccrp-Trace-Id and span records)
	Node   string `json:"node,omitempty"`   // backend that served the request (ccrp-router access logs)
}

// EventSink consumes simulator events. Implementations need not be
// concurrency-safe; the simulators are single-threaded.
type EventSink interface {
	Emit(e Event)
	Close() error
}

// JSONLSink writes one JSON object per line through a buffer.
type JSONLSink struct {
	w   *bufio.Writer
	c   io.Closer
	enc *json.Encoder
	err error
}

// NewJSONLSink wraps w in a buffered JSONL encoder. If w is also an
// io.Closer (a file), Close closes it after flushing.
func NewJSONLSink(w io.Writer) *JSONLSink {
	bw := bufio.NewWriterSize(w, 1<<16)
	s := &JSONLSink{w: bw, enc: json.NewEncoder(bw)}
	if c, ok := w.(io.Closer); ok {
		s.c = c
	}
	return s
}

// Emit writes the event; the first write error sticks and is returned by
// Close.
func (s *JSONLSink) Emit(e Event) {
	if s.err != nil {
		return
	}
	s.err = s.enc.Encode(e)
}

// Close flushes the buffer and closes the underlying writer if it is a
// Closer.
func (s *JSONLSink) Close() error {
	ferr := s.w.Flush()
	if s.err == nil {
		s.err = ferr
	}
	if s.c != nil {
		cerr := s.c.Close()
		if s.err == nil {
			s.err = cerr
		}
	}
	return s.err
}

// SyncSink serializes Emit and Close calls onto an inner sink, making a
// single-threaded sink (JSONLSink, SampledSink) safe to share between the
// workers of a parallel sweep. Event order across workers is arrival
// order, which is not deterministic.
type SyncSink struct {
	mu    sync.Mutex
	inner EventSink
}

// NewSyncSink wraps inner in a mutex.
func NewSyncSink(inner EventSink) *SyncSink {
	return &SyncSink{inner: inner}
}

// Emit forwards e under the lock.
func (s *SyncSink) Emit(e Event) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.inner.Emit(e)
}

// Close closes the inner sink under the lock.
func (s *SyncSink) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.inner.Close()
}

// SampledSink forwards fetch events at a 1-in-Every rate and every other
// event type unchanged. Every <= 1 forwards everything.
type SampledSink struct {
	Inner EventSink
	Every uint64
	seen  uint64
}

// Emit forwards e subject to fetch sampling.
func (s *SampledSink) Emit(e Event) {
	if e.Type == EvFetch && s.Every > 1 {
		s.seen++
		if s.seen%s.Every != 0 {
			return
		}
	}
	s.Inner.Emit(e)
}

// Close closes the inner sink.
func (s *SampledSink) Close() error { return s.Inner.Close() }
