package metrics

import (
	"bytes"
	"strings"
	"sync"
	"testing"
)

// TestMergeAccumulates: merging worker registries reproduces the totals
// one sequential registry would hold, for every instrument kind.
func TestMergeAccumulates(t *testing.T) {
	target := New()
	target.Counter("c", "help").Add(5)
	target.Histogram("h", "", []float64{1, 10}).Observe(0.5)
	target.CounterVec("v", "", "set").WithInt(0).Add(2)

	src := New()
	src.Counter("c", "help").Add(7)
	src.Counter("only_src", "").Inc()
	src.Gauge("g", "").Set(3.5)
	h := src.Histogram("h", "", []float64{1, 10})
	h.Observe(5)
	h.Observe(100) // overflow bucket
	src.CounterVec("v", "", "set").WithInt(0).Add(3)
	src.CounterVec("v", "", "set").WithInt(4).Add(1)

	target.Merge(src)

	if got := target.Counter("c", "").Value(); got != 12 {
		t.Errorf("counter = %d, want 12", got)
	}
	if got := target.Counter("only_src", "").Value(); got != 1 {
		t.Errorf("new counter = %d, want 1", got)
	}
	if got := target.Gauge("g", "").Value(); got != 3.5 {
		t.Errorf("gauge = %g, want 3.5", got)
	}
	th := target.Histogram("h", "", []float64{1, 10})
	if th.Count() != 3 || th.Sum() != 105.5 {
		t.Errorf("histogram count=%d sum=%g, want 3/105.5", th.Count(), th.Sum())
	}
	if counts := th.BucketCounts(); counts[0] != 1 || counts[1] != 1 || counts[2] != 1 {
		t.Errorf("bucket counts = %v", counts)
	}
	vec := target.CounterVec("v", "", "set")
	if vec.WithInt(0).Value() != 5 || vec.WithInt(4).Value() != 1 {
		t.Errorf("vec = %d/%d, want 5/1", vec.WithInt(0).Value(), vec.WithInt(4).Value())
	}
}

// TestMergeNilSafe: nil receivers and sources no-op.
func TestMergeNilSafe(t *testing.T) {
	var nilReg *Registry
	nilReg.Merge(New()) // must not panic
	r := New()
	r.Counter("c", "").Inc()
	r.Merge(nil)
	if r.Counter("c", "").Value() != 1 {
		t.Error("merge with nil source disturbed the registry")
	}
}

// TestMergeBoundsClash: merging a histogram with different bucket bounds
// is a programming error and panics like any re-registration clash.
func TestMergeBoundsClash(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("bounds clash did not panic")
		}
	}()
	a, b := New(), New()
	a.Histogram("h", "", []float64{1, 2})
	b.Histogram("h", "", []float64{1, 3})
	a.Merge(b)
}

// TestMergeEquivalentToSequential: N worker registries fed disjoint
// slices of one workload merge into exactly the sequential export.
func TestMergeEquivalentToSequential(t *testing.T) {
	record := func(r *Registry, i int) {
		r.Counter("ops_total", "ops").Inc()
		r.Histogram("lat", "cycles", []float64{4, 16, 64}).Observe(float64(i))
		r.CounterVec("per_set", "misses", "set").WithInt(i % 4).Inc()
	}
	seq := New()
	workers := []*Registry{New(), New(), New()}
	for i := 0; i < 60; i++ {
		record(seq, i)
		record(workers[i%3], i)
	}
	merged := New()
	for _, w := range workers {
		merged.Merge(w)
	}
	var wantBuf, gotBuf bytes.Buffer
	if err := seq.WritePrometheus(&wantBuf); err != nil {
		t.Fatal(err)
	}
	if err := merged.WritePrometheus(&gotBuf); err != nil {
		t.Fatal(err)
	}
	if wantBuf.String() != gotBuf.String() {
		t.Errorf("merged export differs from sequential:\n--- merged ---\n%s--- sequential ---\n%s",
			gotBuf.String(), wantBuf.String())
	}
}

// TestSyncSink: concurrent emitters through a SyncSink reach a
// single-threaded inner sink intact (run under -race).
func TestSyncSink(t *testing.T) {
	var buf bytes.Buffer
	sink := NewSyncSink(NewJSONLSink(&buf))
	var wg sync.WaitGroup
	const goroutines, each = 8, 25
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < each; i++ {
				sink.Emit(Event{Type: EvFetch, Seq: uint64(g*each + i), Line: -1, Set: -1})
			}
		}(g)
	}
	wg.Wait()
	if err := sink.Close(); err != nil {
		t.Fatal(err)
	}
	lines := strings.Count(buf.String(), "\n")
	if lines != goroutines*each {
		t.Errorf("sink wrote %d events, want %d", lines, goroutines*each)
	}
}
