package metrics

import (
	"encoding/json"
	"fmt"
	"io"
	"strings"

	"ccrp/internal/tablefmt"
)

// Format names accepted by WriteFormat and the CLIs' -metrics flag.
const (
	FormatTable = "table"
	FormatJSON  = "json"
	FormatProm  = "prom"
)

// Formats lists the supported export format names.
func Formats() []string { return []string{FormatTable, FormatJSON, FormatProm} }

// WriteFormat dispatches on the format name.
func (r *Registry) WriteFormat(w io.Writer, format string) error {
	switch format {
	case FormatTable:
		return r.WriteTable(w)
	case FormatJSON:
		return r.WriteJSON(w)
	case FormatProm:
		return r.WritePrometheus(w)
	default:
		return fmt.Errorf("metrics: unknown format %q (have %s)", format, strings.Join(Formats(), ", "))
	}
}

// WriteTable renders every instrument as a fixed-width text table in
// registration order, reusing the paper tables' layout.
func (r *Registry) WriteTable(w io.Writer) error {
	t := &tablefmt.Table{
		Title:   "Metrics",
		Headers: []string{"Name", "Type", "Value", "Help"},
	}
	for _, in := range r.snapshot() {
		switch in.kind {
		case kindCounter:
			t.AddRow(in.name, "counter", fmt.Sprintf("%d", in.c.Value()), in.help)
		case kindGauge:
			t.AddRow(in.name, "gauge", fmt.Sprintf("%g", in.g.Value()), in.help)
		case kindHistogram:
			t.AddRow(in.name, "histogram",
				fmt.Sprintf("count=%d sum=%g", in.h.Count(), in.h.Sum()), in.help)
			cum := uint64(0)
			for i, b := range in.h.Bounds() {
				cum += in.h.BucketCounts()[i]
				t.AddRow(fmt.Sprintf("  le=%g", b), "", fmt.Sprintf("%d", cum), "")
			}
			t.AddRow("  le=+Inf", "", fmt.Sprintf("%d", in.h.Count()), "")
		case kindCounterVec:
			for _, lv := range in.vec.labels() {
				t.AddRow(fmt.Sprintf("%s{%s=%s}", in.name, in.vec.label, lv),
					"counter", fmt.Sprintf("%d", in.vec.index[lv].Value()), in.help)
			}
		case kindGaugeVec:
			for _, lv := range in.gvec.labels() {
				t.AddRow(fmt.Sprintf("%s{%s=%s}", in.name, in.gvec.label, lv),
					"gauge", fmt.Sprintf("%g", in.gvec.index[lv].Value()), in.help)
			}
		}
	}
	t.Render(w)
	return nil
}

// jsonMetric is the JSON export shape of one instrument.
type jsonMetric struct {
	Name    string            `json:"name"`
	Type    string            `json:"type"`
	Help    string            `json:"help,omitempty"`
	Value   *float64          `json:"value,omitempty"`
	Count   *uint64           `json:"count,omitempty"`
	Sum     *float64          `json:"sum,omitempty"`
	Buckets []jsonBucket      `json:"buckets,omitempty"`
	Labels  map[string]uint64 `json:"labels,omitempty"`
	// GaugeLabels carries GaugeVec children, whose values are floats.
	GaugeLabels map[string]float64 `json:"gauge_labels,omitempty"`
}

type jsonBucket struct {
	LE    float64 `json:"le"`
	Count uint64  `json:"count"` // cumulative, Prometheus-style
	Inf   bool    `json:"inf,omitempty"`
}

// WriteJSON emits the registry as one JSON object {"metrics": [...]}.
func (r *Registry) WriteJSON(w io.Writer) error {
	var out []jsonMetric
	for _, in := range r.snapshot() {
		m := jsonMetric{Name: in.name, Help: in.help}
		switch in.kind {
		case kindCounter:
			m.Type = "counter"
			v := float64(in.c.Value())
			m.Value = &v
		case kindGauge:
			m.Type = "gauge"
			v := in.g.Value()
			m.Value = &v
		case kindHistogram:
			m.Type = "histogram"
			n, s := in.h.Count(), in.h.Sum()
			m.Count, m.Sum = &n, &s
			cum := uint64(0)
			for i, b := range in.h.Bounds() {
				cum += in.h.BucketCounts()[i]
				m.Buckets = append(m.Buckets, jsonBucket{LE: b, Count: cum})
			}
			m.Buckets = append(m.Buckets, jsonBucket{Count: n, Inf: true})
		case kindCounterVec:
			m.Type = "counter"
			m.Labels = make(map[string]uint64, len(in.vec.index))
			for lv, c := range in.vec.index {
				m.Labels[in.vec.label+"="+lv] = c.Value()
			}
		case kindGaugeVec:
			m.Type = "gauge"
			m.GaugeLabels = make(map[string]float64, len(in.gvec.index))
			for lv, g := range in.gvec.index {
				m.GaugeLabels[in.gvec.label+"="+lv] = g.Value()
			}
		}
		out = append(out, m)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(struct {
		Metrics []jsonMetric `json:"metrics"`
	}{out})
}

// Escaping per the Prometheus text exposition format: HELP text escapes
// backslash and newline; label values additionally escape double quotes.
// Go's %q is close but not conformant (it escapes tabs, non-ASCII, and
// more, which scrapers then render literally), so the replacers below
// implement exactly the spec's three sequences.
var (
	helpEscaper  = strings.NewReplacer(`\`, `\\`, "\n", `\n`)
	labelEscaper = strings.NewReplacer(`\`, `\\`, "\n", `\n`, `"`, `\"`)
)

// WritePrometheus emits the registry in the Prometheus text exposition
// format (version 0.0.4): # HELP / # TYPE headers, cumulative histogram
// buckets with le labels, and a label per CounterVec child. Help text and
// label values are escaped per the format, so hostile instrument help or
// label values (quotes, newlines, backslashes) cannot corrupt the
// exposition stream.
func (r *Registry) WritePrometheus(w io.Writer) error {
	for _, in := range r.snapshot() {
		typ := map[kind]string{
			kindCounter: "counter", kindGauge: "gauge",
			kindHistogram: "histogram", kindCounterVec: "counter",
			kindGaugeVec: "gauge",
		}[in.kind]
		if in.help != "" {
			if _, err := fmt.Fprintf(w, "# HELP %s %s\n", in.name, helpEscaper.Replace(in.help)); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", in.name, typ); err != nil {
			return err
		}
		switch in.kind {
		case kindCounter:
			fmt.Fprintf(w, "%s %d\n", in.name, in.c.Value())
		case kindGauge:
			fmt.Fprintf(w, "%s %g\n", in.name, in.g.Value())
		case kindHistogram:
			cum := uint64(0)
			for i, b := range in.h.Bounds() {
				cum += in.h.BucketCounts()[i]
				fmt.Fprintf(w, "%s_bucket{le=\"%g\"} %d\n", in.name, b, cum)
			}
			fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n", in.name, in.h.Count())
			fmt.Fprintf(w, "%s_sum %g\n", in.name, in.h.Sum())
			fmt.Fprintf(w, "%s_count %d\n", in.name, in.h.Count())
		case kindCounterVec:
			for _, lv := range in.vec.labels() {
				fmt.Fprintf(w, "%s{%s=\"%s\"} %d\n", in.name, in.vec.label,
					labelEscaper.Replace(lv), in.vec.index[lv].Value())
			}
		case kindGaugeVec:
			for _, lv := range in.gvec.labels() {
				fmt.Fprintf(w, "%s{%s=\"%s\"} %g\n", in.name, in.gvec.label,
					labelEscaper.Replace(lv), in.gvec.index[lv].Value())
			}
		}
	}
	return nil
}
