package lat

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestEntryEncodeDecode(t *testing.T) {
	e := Entry{Base: 0xABCDEF, Lens: [8]uint8{0, 1, 31, 15, 7, 0, 22, 3}}
	enc := e.Encode()
	got, err := DecodeEntry(enc)
	if err != nil {
		t.Fatal(err)
	}
	if got != e {
		t.Fatalf("round trip: got %+v, want %+v", got, e)
	}
}

func TestEntryEncodeDecodeQuick(t *testing.T) {
	f := func(base uint32, lens [8]uint8) bool {
		e := Entry{Base: base & 0xFFFFFF}
		for i, l := range lens {
			e.Lens[i] = l & 31
		}
		got, err := DecodeEntry(e.Encode())
		return err == nil && got == e
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestBlockSemantics(t *testing.T) {
	e := Entry{Base: 0x1000, Lens: [8]uint8{10, 0, 31, 1, 0, 0, 0, 0}}
	if e.BlockLength(0) != 10 || e.BlockLength(1) != 32 || e.BlockLength(2) != 31 {
		t.Error("block lengths wrong")
	}
	if !e.IsRaw(1) || e.IsRaw(0) {
		t.Error("raw flags wrong")
	}
	if e.BlockAddress(0) != 0x1000 {
		t.Errorf("block 0 at %#x", e.BlockAddress(0))
	}
	if e.BlockAddress(1) != 0x1000+10 {
		t.Errorf("block 1 at %#x", e.BlockAddress(1))
	}
	if e.BlockAddress(3) != 0x1000+10+32+31 {
		t.Errorf("block 3 at %#x", e.BlockAddress(3))
	}
}

func TestBuildAndLookup(t *testing.T) {
	// 20 blocks of varying lengths -> 3 entries.
	lens := make([]int, 20)
	rng := rand.New(rand.NewSource(4))
	for i := range lens {
		if rng.Intn(4) == 0 {
			lens[i] = 32 // raw
		} else {
			lens[i] = 1 + rng.Intn(31)
		}
	}
	tab, err := Build(lens, 0x2000)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Entries) != 3 {
		t.Fatalf("entries = %d", len(tab.Entries))
	}
	// Walk all program addresses and compare against a linear layout.
	addr := uint32(0x2000)
	for i, l := range lens {
		progAddr := uint32(i * LineSize)
		got, gotLen, raw, err := tab.Lookup(progAddr + 13) // any offset in line
		if err != nil {
			t.Fatal(err)
		}
		if got != addr || gotLen != l {
			t.Errorf("block %d: got %#x/%d, want %#x/%d", i, got, gotLen, addr, l)
		}
		if raw != (l == 32) {
			t.Errorf("block %d raw = %v", i, raw)
		}
		addr += uint32(l)
	}
	if _, _, _, err := tab.Lookup(uint32(len(lens)) * LineSize); err == nil {
		t.Error("lookup past table accepted")
	}
}

// TestBuildLengthBoundaries pins the 5-bit length-field boundaries. The
// old code rejected bad lengths with an untyped error (and Encode would
// wrap any length that slipped through, 33 -> 1), so the errors.Is
// assertions below fail on it; valid boundaries must round-trip through
// Encode unchanged.
func TestBuildLengthBoundaries(t *testing.T) {
	cases := []struct {
		length  int
		ok      bool
		wantLen uint8 // encoded 5-bit code when ok
	}{
		{length: 0, ok: false},
		{length: 1, ok: true, wantLen: 1},
		{length: 31, ok: true, wantLen: 31},
		{length: 32, ok: true, wantLen: 0}, // raw / decoder bypass
		{length: 33, ok: false},
		{length: -1, ok: false},
	}
	for _, tc := range cases {
		tab, err := Build([]int{tc.length}, 0)
		if !tc.ok {
			if err == nil {
				t.Errorf("length %d: accepted, want ErrBadEntry", tc.length)
			} else if !errors.Is(err, ErrBadEntry) {
				t.Errorf("length %d: error %v does not wrap ErrBadEntry", tc.length, err)
			}
			continue
		}
		if err != nil {
			t.Errorf("length %d: rejected: %v", tc.length, err)
			continue
		}
		if got := tab.Entries[0].Lens[0]; got != tc.wantLen {
			t.Errorf("length %d: encoded code %d, want %d", tc.length, got, tc.wantLen)
		}
		// The code must survive Encode/DecodeEntry without wrapping.
		dec, err := DecodeEntry(tab.Entries[0].Encode())
		if err != nil {
			t.Errorf("length %d: round trip: %v", tc.length, err)
		} else if dec.Lens[0] != tc.wantLen {
			t.Errorf("length %d: round-tripped code %d, want %d", tc.length, dec.Lens[0], tc.wantLen)
		}
	}
}

func TestBuildRejectsBadBase(t *testing.T) {
	if _, err := Build([]int{16}, 1<<24); !errors.Is(err, ErrBadEntry) {
		t.Errorf("address beyond 24 bits: err = %v, want ErrBadEntry", err)
	}
}

// TestEntryValidate covers hand-constructed entries, the path Build
// cannot police.
func TestEntryValidate(t *testing.T) {
	if err := (Entry{Base: 1<<24 - 1, Lens: [8]uint8{31, 0, 1}}).Validate(); err != nil {
		t.Errorf("maximal valid entry rejected: %v", err)
	}
	if err := (Entry{Base: 1 << 24}).Validate(); !errors.Is(err, ErrBadEntry) {
		t.Errorf("26-bit base: err = %v, want ErrBadEntry", err)
	}
	if err := (Entry{Lens: [8]uint8{0, 33}}).Validate(); !errors.Is(err, ErrBadEntry) {
		t.Errorf("length code 33: err = %v, want ErrBadEntry", err)
	}
}

func TestTableSerialization(t *testing.T) {
	lens := []int{32, 1, 2, 3, 4, 5, 6, 7, 8, 9}
	tab, err := Build(lens, 0)
	if err != nil {
		t.Fatal(err)
	}
	b := tab.Bytes()
	if len(b) != tab.Size() || tab.Size() != 2*EntryBytes {
		t.Fatalf("size = %d bytes", len(b))
	}
	got, err := Parse(b)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Entries) != len(tab.Entries) {
		t.Fatal("entry count changed")
	}
	for i := range got.Entries {
		if got.Entries[i] != tab.Entries[i] {
			t.Errorf("entry %d changed: %+v vs %+v", i, got.Entries[i], tab.Entries[i])
		}
	}
	if _, err := Parse(b[:5]); err == nil {
		t.Error("truncated table accepted")
	}
}

func TestOverhead(t *testing.T) {
	// 256 bytes of program per 8-byte entry = 3.125%.
	lens := make([]int, 64) // 64 lines = 2KB program
	for i := range lens {
		lens[i] = 20
	}
	tab, err := Build(lens, 0)
	if err != nil {
		t.Fatal(err)
	}
	if got := tab.Overhead(64 * LineSize); got != 0.03125 {
		t.Errorf("overhead = %v, want 0.03125", got)
	}
	// The naive pointer-per-block scheme costs 12.5%.
	if naive := float64(NaiveTableSize(64)) / float64(64*LineSize); naive != 0.125 {
		t.Errorf("naive overhead = %v", naive)
	}
}

func BenchmarkBlockAddress(b *testing.B) {
	e := Entry{Base: 0x8000, Lens: [8]uint8{9, 17, 0, 25, 31, 4, 12, 30}}
	for i := 0; i < b.N; i++ {
		_ = e.BlockAddress(i & 7)
	}
}
