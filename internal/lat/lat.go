// Package lat implements the Line Address Table of the Compressed Code
// RISC Processor. The LAT maps program (uncompressed) instruction block
// addresses to the physical locations of the compressed blocks in
// instruction memory.
//
// Each 8-byte entry covers eight consecutive 32-byte cache lines (256
// program bytes): a 3-byte pointer to the first compressed block followed
// by eight 5-bit compressed-block lengths. A length field of 0 marks a
// block stored uncompressed (32 bytes), which is also the decoder-bypass
// flag. The storage overhead is 8/256 = 3.125% of the original program.
package lat

import (
	"errors"
	"fmt"

	"ccrp/internal/bitio"
)

// Geometry of the paper's proposed implementation (§3.2).
const (
	LineSize      = 32                       // bytes per cache line / compressed block
	LinesPerEntry = 8                        // blocks covered by one LAT entry
	EntryBytes    = 8                        // serialized entry size
	GroupSpan     = LineSize * LinesPerEntry // program bytes per entry (256)
	maxBlockLen   = 31                       // largest length a 5-bit field holds
)

// ErrBadEntry is returned when decoding a malformed entry.
var ErrBadEntry = errors.New("lat: malformed entry")

// Entry is one Line Address Table record.
type Entry struct {
	Base uint32               // 24-bit physical address of the first block
	Lens [LinesPerEntry]uint8 // 5-bit length codes; 0 = raw 32-byte block
}

// BlockLength returns the stored size in bytes of block i (1..32).
func (e Entry) BlockLength(i int) int {
	if e.Lens[i] == 0 {
		return LineSize
	}
	return int(e.Lens[i])
}

// IsRaw reports whether block i is stored uncompressed (decoder bypass).
func (e Entry) IsRaw(i int) bool { return e.Lens[i] == 0 }

// Validate checks that the entry fits its 8-byte memory representation:
// a 24-bit base and eight 5-bit length codes. Encode silently truncates
// out-of-range fields (33 wraps to 1 in 5 bits, corrupting every block
// address computed after it), so callers constructing entries by hand
// must validate before encoding; Build enforces this for whole tables.
func (e Entry) Validate() error {
	if e.Base >= 1<<24 {
		return fmt.Errorf("%w: base %#x exceeds 24-bit space", ErrBadEntry, e.Base)
	}
	for i, l := range e.Lens {
		if l > maxBlockLen {
			return fmt.Errorf("%w: block %d length code %d exceeds 5-bit field", ErrBadEntry, i, l)
		}
	}
	return nil
}

// BlockAddress returns the physical address of block i within the entry:
// the base plus the lengths of the preceding blocks. This models the
// CLB's address computation unit (the adder tree of Figure 8).
func (e Entry) BlockAddress(i int) uint32 {
	addr := e.Base
	for j := 0; j < i; j++ {
		addr += uint32(e.BlockLength(j))
	}
	return addr
}

// Encode packs the entry into its 8-byte memory representation: a 24-bit
// little-endian base followed by eight 5-bit fields, MSB first.
func (e Entry) Encode() [EntryBytes]byte {
	var w bitio.Writer
	w.WriteBits(uint64(e.Base>>0)&0xFF, 8)
	w.WriteBits(uint64(e.Base>>8)&0xFF, 8)
	w.WriteBits(uint64(e.Base>>16)&0xFF, 8)
	for _, l := range e.Lens {
		w.WriteBits(uint64(l), 5)
	}
	var out [EntryBytes]byte
	copy(out[:], w.Bytes())
	return out
}

// DecodeEntry unpacks an 8-byte entry.
func DecodeEntry(b [EntryBytes]byte) (Entry, error) {
	r := bitio.NewReader(b[:])
	var e Entry
	lo, _ := r.ReadBits(8)
	mid, _ := r.ReadBits(8)
	hi, _ := r.ReadBits(8)
	e.Base = uint32(lo) | uint32(mid)<<8 | uint32(hi)<<16
	for i := range e.Lens {
		v, err := r.ReadBits(5)
		if err != nil {
			return Entry{}, ErrBadEntry
		}
		e.Lens[i] = uint8(v)
	}
	return e, nil
}

// Table is a complete LAT for a program whose text starts at address 0.
type Table struct {
	Entries []Entry
	Blocks  int // number of real blocks (the last entry may be partial)
}

// Build constructs a table from per-line stored block lengths (each 1..32,
// where 32 means raw) laid out consecutively starting at firstBlockAddr.
func Build(blockLens []int, firstBlockAddr uint32) (*Table, error) {
	t := &Table{Blocks: len(blockLens)}
	addr := firstBlockAddr
	for i := 0; i < len(blockLens); i += LinesPerEntry {
		e := Entry{Base: addr}
		if addr >= 1<<24 {
			return nil, fmt.Errorf("%w: block address %#x exceeds 24-bit space", ErrBadEntry, addr)
		}
		for j := 0; j < LinesPerEntry && i+j < len(blockLens); j++ {
			l := blockLens[i+j]
			switch {
			case l == LineSize:
				e.Lens[j] = 0
			case l >= 1 && l <= maxBlockLen:
				e.Lens[j] = uint8(l)
			default:
				// Rejecting here keeps out-of-range lengths from ever
				// reaching Encode, where they would wrap in the 5-bit
				// field (33 -> 1) and shift every later block address.
				return nil, fmt.Errorf("%w: block %d has unstorable length %d", ErrBadEntry, i+j, l)
			}
			addr += uint32(l)
		}
		if err := e.Validate(); err != nil {
			return nil, err
		}
		t.Entries = append(t.Entries, e)
	}
	return t, nil
}

// EntryFor returns the entry index and block-within-entry index for the
// given program (uncompressed) byte address.
func (t *Table) EntryFor(progAddr uint32) (entry, block int) {
	line := progAddr / LineSize
	return int(line / LinesPerEntry), int(line % LinesPerEntry)
}

// Lookup returns the physical address and stored length of the compressed
// block holding progAddr.
func (t *Table) Lookup(progAddr uint32) (addr uint32, length int, raw bool, err error) {
	ei, bi := t.EntryFor(progAddr)
	if line := int(progAddr / LineSize); line >= t.Blocks || ei >= len(t.Entries) {
		return 0, 0, false, fmt.Errorf("lat: address %#x beyond table (%d blocks)", progAddr, t.Blocks)
	}
	e := t.Entries[ei]
	return e.BlockAddress(bi), e.BlockLength(bi), e.IsRaw(bi), nil
}

// Bytes serializes the whole table.
func (t *Table) Bytes() []byte {
	out := make([]byte, 0, len(t.Entries)*EntryBytes)
	for _, e := range t.Entries {
		enc := e.Encode()
		out = append(out, enc[:]...)
	}
	return out
}

// Size returns the table's storage cost in bytes.
func (t *Table) Size() int { return len(t.Entries) * EntryBytes }

// Overhead returns the table size as a fraction of original program size.
func (t *Table) Overhead(originalBytes int) float64 {
	if originalBytes == 0 {
		return 0
	}
	return float64(t.Size()) / float64(originalBytes)
}

// Parse reconstructs a table from its serialized form.
func Parse(b []byte) (*Table, error) {
	if len(b)%EntryBytes != 0 {
		return nil, fmt.Errorf("%w: size %d not a multiple of %d", ErrBadEntry, len(b), EntryBytes)
	}
	t := &Table{
		Entries: make([]Entry, 0, len(b)/EntryBytes),
		Blocks:  len(b) / EntryBytes * LinesPerEntry, // upper bound; Build knows better
	}
	for i := 0; i < len(b); i += EntryBytes {
		var raw [EntryBytes]byte
		copy(raw[:], b[i:])
		e, err := DecodeEntry(raw)
		if err != nil {
			return nil, err
		}
		t.Entries = append(t.Entries, e)
	}
	return t, nil
}

// NaiveTableSize returns the storage a one-pointer-per-block LAT would
// need (the paper's rejected 12.5%-overhead baseline), for ablations.
func NaiveTableSize(blocks int) int { return blocks * 4 }
