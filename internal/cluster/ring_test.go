package cluster

import (
	"fmt"
	"testing"
)

// keys generates n synthetic coder-id-shaped keys.
func keys(n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = fmt.Sprintf("coder-%064d", i)
	}
	return out
}

// TestRingDeterminism pins the routing contract: the same membership
// yields the same assignment regardless of construction order, across
// fresh rings, and Order always starts at Owner.
func TestRingDeterminism(t *testing.T) {
	a := New(0, "n1:8642", "n2:8642", "n3:8642")
	b := New(0, "n3:8642", "n1:8642", "n2:8642") // different insertion order
	c := New(0)
	c.Add("n2:8642")
	c.Add("n3:8642")
	c.Add("n1:8642")

	for _, k := range keys(500) {
		owner := a.Owner(k)
		if got := b.Owner(k); got != owner {
			t.Fatalf("key %s: owner differs across insertion orders: %s vs %s", k, owner, got)
		}
		if got := c.Owner(k); got != owner {
			t.Fatalf("key %s: owner differs across incremental build: %s vs %s", k, owner, got)
		}
		order := a.Order(k)
		if len(order) != 3 {
			t.Fatalf("key %s: Order returned %d nodes, want 3", k, len(order))
		}
		if order[0] != owner {
			t.Fatalf("key %s: Order[0] = %s, Owner = %s", k, order[0], owner)
		}
		seen := map[string]bool{}
		for _, n := range order {
			if seen[n] {
				t.Fatalf("key %s: Order repeats node %s", k, n)
			}
			seen[n] = true
		}
	}
}

// TestRingDistribution asserts the virtual nodes spread keys within a
// reasonable band of uniform: no node of a 4-node ring owns less than
// half or more than double its fair share over 4000 keys.
func TestRingDistribution(t *testing.T) {
	nodes := []string{"a:1", "b:1", "c:1", "d:1"}
	r := New(0, nodes...)
	counts := map[string]int{}
	ks := keys(4000)
	for _, k := range ks {
		counts[r.Owner(k)]++
	}
	fair := len(ks) / len(nodes)
	for _, n := range nodes {
		got := counts[n]
		if got < fair/2 || got > fair*2 {
			t.Errorf("node %s owns %d of %d keys (fair share %d): distribution too skewed (%v)",
				n, got, len(ks), fair, counts)
		}
	}
}

// TestRingBoundedMovement is the consistent-hashing property itself:
// adding a node to an N-node ring moves roughly 1/(N+1) of the keys —
// all of them onto the new node — and leaves every other assignment
// untouched; removing it restores the original assignment exactly.
func TestRingBoundedMovement(t *testing.T) {
	base := []string{"a:1", "b:1", "c:1"}
	r := New(0, base...)
	ks := keys(4000)
	before := make(map[string]string, len(ks))
	for _, k := range ks {
		before[k] = r.Owner(k)
	}

	r.Add("d:1")
	moved := 0
	for _, k := range ks {
		after := r.Owner(k)
		if after != before[k] {
			moved++
			if after != "d:1" {
				t.Fatalf("key %s moved %s -> %s: keys may only move onto the joining node",
					k, before[k], after)
			}
		}
	}
	// Expected movement is 1/4 of keys; allow a 2x band around it.
	want := len(ks) / 4
	if moved < want/2 || moved > want*2 {
		t.Errorf("adding a 4th node moved %d of %d keys, want ~%d (1/N bound violated)",
			moved, len(ks), want)
	}

	r.Remove("d:1")
	for _, k := range ks {
		if got := r.Owner(k); got != before[k] {
			t.Fatalf("key %s: owner %s after leave, want original %s", k, got, before[k])
		}
	}
}

// TestRingEdgeCases covers the degenerate memberships the router can
// still be configured with.
func TestRingEdgeCases(t *testing.T) {
	empty := New(0)
	if got := empty.Owner("k"); got != "" {
		t.Errorf("empty ring owner = %q, want empty", got)
	}
	if got := empty.Order("k"); got != nil {
		t.Errorf("empty ring order = %v, want nil", got)
	}

	one := New(0, "solo:1")
	for _, k := range keys(10) {
		if got := one.Owner(k); got != "solo:1" {
			t.Errorf("single-node ring owner = %q", got)
		}
	}

	// Duplicate adds and absent removes are no-ops.
	r := New(0, "a:1", "a:1", "b:1")
	if r.Len() != 2 {
		t.Errorf("ring len = %d after duplicate add, want 2", r.Len())
	}
	r.Remove("nope:1")
	if r.Len() != 2 {
		t.Errorf("ring len = %d after absent remove, want 2", r.Len())
	}
}
