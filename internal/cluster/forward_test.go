package cluster

import (
	"context"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// testBackend is one scripted fleet member.
type testBackend struct {
	node string
	ts   *httptest.Server
	hits int
	fail bool // respond 500 when set
}

// newFleet boots n scripted backends and a forwarder over them. The
// checker's probe always succeeds so health changes only via passive
// reports (active probing is covered by the checker tests).
func newFleet(t *testing.T, n int) ([]*testBackend, *Forwarder, *Checker) {
	t.Helper()
	backends := make([]*testBackend, n)
	nodes := make([]string, n)
	for i := range backends {
		b := &testBackend{}
		b.ts = httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			b.hits++
			if b.fail {
				http.Error(w, "scripted failure", http.StatusInternalServerError)
				return
			}
			io.WriteString(w, b.node)
		}))
		t.Cleanup(b.ts.Close)
		b.node = strings.TrimPrefix(b.ts.URL, "http://")
		backends[i] = b
		nodes[i] = b.node
	}
	checker := NewChecker(CheckerConfig{
		Nodes: nodes,
		Probe: func(context.Context, string) error { return nil },
	})
	fwd := NewForwarder(ForwarderConfig{
		Ring:    New(0, nodes...),
		Health:  checker,
		Backoff: time.Millisecond,
	})
	return backends, fwd, checker
}

func byNode(backends []*testBackend) map[string]*testBackend {
	m := make(map[string]*testBackend, len(backends))
	for _, b := range backends {
		m[b.node] = b
	}
	return m
}

// doKey forwards one GET for key and returns the answering node name
// from the response body.
func doKey(t *testing.T, fwd *Forwarder, key string) (*Result, string) {
	t.Helper()
	res, err := fwd.Do(context.Background(), key, http.MethodGet, "/v1/thing", nil, nil)
	if err != nil {
		t.Fatalf("forward %q: %v", key, err)
	}
	body, err := io.ReadAll(res.Resp.Body)
	res.Resp.Body.Close()
	if err != nil {
		t.Fatalf("read body: %v", err)
	}
	return res, string(body)
}

// TestForwardStickiness: the same key lands on the same (owner) node on
// every request while the fleet is healthy.
func TestForwardStickiness(t *testing.T) {
	backends, fwd, _ := newFleet(t, 3)
	owner := fwd.cfg.Ring.Owner("coder-abc")
	for i := 0; i < 5; i++ {
		res, servedBy := doKey(t, fwd, "coder-abc")
		if servedBy != owner || res.Node != owner {
			t.Fatalf("request %d served by %s (result says %s), want owner %s", i, servedBy, res.Node, owner)
		}
		if res.FailedOver() {
			t.Fatalf("request %d failed over on a healthy fleet: %+v", i, res.Attempts)
		}
	}
	m := byNode(backends)
	if m[owner].hits != 5 {
		t.Errorf("owner took %d hits, want 5", m[owner].hits)
	}
}

// TestFailoverOn5xx: a 500 from the owner moves the request to the
// ring's next node for the same key, reports the failure to the health
// checker, and the client still sees a 200.
func TestFailoverOn5xx(t *testing.T) {
	backends, fwd, checker := newFleet(t, 3)
	key := "coder-failover"
	order := fwd.cfg.Ring.Order(key)
	m := byNode(backends)
	m[order[0]].fail = true

	res, servedBy := doKey(t, fwd, key)
	if res.Resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, want 200 after failover", res.Resp.StatusCode)
	}
	if servedBy != order[1] {
		t.Fatalf("served by %s, want the ring successor %s (order %v)", servedBy, order[1], order)
	}
	if !res.FailedOver() || len(res.Attempts) != 2 {
		t.Fatalf("attempts = %+v, want owner 5xx then successor 200", res.Attempts)
	}
	if res.Attempts[0].Status != http.StatusInternalServerError {
		t.Errorf("first attempt status = %d, want 500", res.Attempts[0].Status)
	}
	// The failure fed the health state machine.
	snap := checker.Snapshot()
	for _, st := range snap {
		if st.Node == order[0] && st.ConsecFail != 1 {
			t.Errorf("owner consecutive failures = %d, want 1", st.ConsecFail)
		}
	}
}

// TestFailoverOnConnectionError: a dead listener (the kill -9 case)
// fails over to the next healthy node, and after FailThreshold such
// failures the node is ejected so later requests skip it entirely.
func TestFailoverOnConnectionError(t *testing.T) {
	backends, fwd, checker := newFleet(t, 3)
	key := "coder-dead-node"
	order := fwd.cfg.Ring.Order(key)
	m := byNode(backends)
	m[order[0]].ts.Close() // kill the owner

	for i := 0; i < 3; i++ {
		res, servedBy := doKey(t, fwd, key)
		if servedBy != order[1] {
			t.Fatalf("request %d served by %s, want %s", i, servedBy, order[1])
		}
		if !res.FailedOver() {
			t.Fatalf("request %d did not record the failover", i)
		}
	}
	if checker.Healthy(order[0]) {
		t.Fatal("dead node still healthy after 3 connection failures")
	}
	// Ejected: the next request goes straight to the successor, no
	// failed attempt first.
	res, servedBy := doKey(t, fwd, key)
	if servedBy != order[1] || res.FailedOver() {
		t.Fatalf("post-ejection request: served by %s, attempts %+v; want direct hit on %s",
			servedBy, res.Attempts, order[1])
	}
}

// TestAllNodes5xx: when every candidate answers 5xx the client receives
// the backend's own last 5xx response, not a synthesized gateway error.
func TestAllNodes5xx(t *testing.T) {
	backends, fwd, _ := newFleet(t, 2)
	for _, b := range backends {
		b.fail = true
	}
	res, err := fwd.Do(context.Background(), "k", http.MethodGet, "/v1/thing", nil, nil)
	if err != nil {
		t.Fatalf("Do: %v (a relayed 5xx is not a transport error)", err)
	}
	defer res.Resp.Body.Close()
	if res.Resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("status = %d, want the backend's 500", res.Resp.StatusCode)
	}
	if len(res.Attempts) != 3 {
		t.Errorf("attempts = %d, want MaxAttempts (3)", len(res.Attempts))
	}
}

// TestCandidatesHealthFilter: unhealthy nodes drop out of the try
// order; with the whole fleet down the full ring order returns as a
// last resort.
func TestCandidatesHealthFilter(t *testing.T) {
	_, fwd, checker := newFleet(t, 3)
	key := "coder-xyz"
	order := fwd.cfg.Ring.Order(key)

	for i := 0; i < 3; i++ {
		checker.ReportFailure(order[0], context.DeadlineExceeded)
	}
	cands := fwd.Candidates(key)
	if len(cands) != 2 || cands[0] != order[1] {
		t.Fatalf("candidates = %v, want %v without the down owner", cands, order[1:])
	}

	for _, n := range order[1:] {
		for i := 0; i < 3; i++ {
			checker.ReportFailure(n, context.DeadlineExceeded)
		}
	}
	cands = fwd.Candidates(key)
	if len(cands) != 3 {
		t.Fatalf("all-down candidates = %v, want the full ring order %v", cands, order)
	}
}

// TestBackoffDelayCap: the per-retry delay doubles from Backoff but
// never exceeds MaxBackoff, including attempt counts whose uncapped
// shift would overflow time.Duration.
func TestBackoffDelayCap(t *testing.T) {
	fwd := NewForwarder(ForwarderConfig{
		Ring:       New(0, "n1"),
		Health:     NewChecker(CheckerConfig{Nodes: []string{"n1"}}),
		Backoff:    10 * time.Millisecond,
		MaxBackoff: 80 * time.Millisecond,
	})
	want := []time.Duration{
		10 * time.Millisecond, // attempt 1
		20 * time.Millisecond,
		40 * time.Millisecond,
		80 * time.Millisecond,
		80 * time.Millisecond, // capped from here on
	}
	for i, w := range want {
		if got := fwd.backoffDelay(i + 1); got != w {
			t.Errorf("backoffDelay(%d) = %v, want %v", i+1, got, w)
		}
	}
	// 64+ doublings overflow int64; the cap must still hold.
	for _, attempt := range []int{63, 64, 100} {
		if got := fwd.backoffDelay(attempt); got != 80*time.Millisecond {
			t.Errorf("backoffDelay(%d) = %v, want the cap", attempt, got)
		}
	}
	// The default cap engages when the config leaves it zero.
	def := NewForwarder(ForwarderConfig{
		Ring:   New(0, "n1"),
		Health: NewChecker(CheckerConfig{Nodes: []string{"n1"}}),
	})
	if def.cfg.MaxBackoff != 2*time.Second {
		t.Errorf("default MaxBackoff = %v, want 2s", def.cfg.MaxBackoff)
	}
	if got := def.backoffDelay(100); got != 2*time.Second {
		t.Errorf("default backoffDelay(100) = %v, want 2s", got)
	}
}

// TestBackoffContextCancel: a context cancelled while Do sleeps between
// retries aborts the wait promptly instead of serving out the delay.
func TestBackoffContextCancel(t *testing.T) {
	backends, fwd, _ := newFleet(t, 1)
	backends[0].fail = true
	fwd.cfg.Backoff = 10 * time.Second // would stall the second attempt
	fwd.cfg.MaxBackoff = 10 * time.Second

	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := fwd.Do(ctx, "k", http.MethodGet, "/v1/thing", nil, nil)
		done <- err
	}()
	time.Sleep(50 * time.Millisecond) // let the first attempt fail and the backoff start
	cancel()
	select {
	case err := <-done:
		if err != context.Canceled {
			t.Fatalf("Do returned %v, want context.Canceled", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("Do still sleeping after cancel; backoff ignored the context")
	}
}

// TestForwardPropagatesHeadersAndBody: the forwarded request carries
// the caller's headers (the trace hop) and body bytes verbatim.
func TestForwardPropagatesHeadersAndBody(t *testing.T) {
	var gotTrace, gotBody string
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		gotTrace = r.Header.Get("X-Ccrp-Trace-Id")
		b, _ := io.ReadAll(r.Body)
		gotBody = string(b)
	}))
	defer ts.Close()
	node := strings.TrimPrefix(ts.URL, "http://")
	checker := NewChecker(CheckerConfig{Nodes: []string{node},
		Probe: func(context.Context, string) error { return nil }})
	fwd := NewForwarder(ForwarderConfig{Ring: New(0, node), Health: checker})

	hdr := http.Header{}
	hdr.Set("X-Ccrp-Trace-Id", "0123456789abcdef0123456789abcdef")
	res, err := fwd.Do(context.Background(), "k", http.MethodPost, "/v1/compress?x=1", hdr, []byte(`{"a":1}`))
	if err != nil {
		t.Fatal(err)
	}
	res.Resp.Body.Close()
	if gotTrace != "0123456789abcdef0123456789abcdef" {
		t.Errorf("trace header = %q, want propagated id", gotTrace)
	}
	if gotBody != `{"a":1}` {
		t.Errorf("body = %q, want forwarded verbatim", gotBody)
	}
}
