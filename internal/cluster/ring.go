// Package cluster is the fleet-serving layer of the stack: a
// consistent-hash ring that assigns content-addressed coder ids to
// ccrpd nodes, an active health checker with per-node up/down state
// machines, and a forwarding client with deadlines, bounded retries,
// and failover. cmd/ccrp-router composes the three into a gateway.
//
// The design replays the paper's central indirection one level up. On
// the embedded core, the LAT maps a fetch address to wherever its
// compressed block actually lives in ROM; here, the ring maps a coder
// id to whichever node owns its trained artifacts, so one expensive
// build (a trained coder, a compressed image) serves the whole fleet
// instead of being redone per node. Like the LAT, the mapping is pure
// and deterministic: the same key always resolves to the same healthy
// node, and membership changes move only the keys they must.
package cluster

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"sort"
)

// DefaultReplicas is the virtual-node count per physical node. 128
// points per node keeps the ring's load spread within a few percent of
// uniform for small fleets (see TestRingDistribution) at a memory cost
// of one (hash, index) pair per point.
const DefaultReplicas = 128

// Ring is a consistent-hash ring over a set of named nodes. Every node
// owns Replicas points on a 64-bit circle; a key belongs to the first
// point clockwise from its own hash. Build the membership with Add (or
// New's initial list); lookups are read-only and safe to share between
// goroutines once membership is settled, which is how the router uses
// it — membership is fixed at boot, health is tracked separately, and
// lookups skip unhealthy nodes by walking the ring order.
type Ring struct {
	replicas int
	nodes    []string // sorted member names
	points   []point  // sorted by hash
}

// point is one virtual node: a position on the circle and the index of
// its owner in nodes.
type point struct {
	hash uint64
	node int
}

// New builds a ring with the given virtual-node count (0 selects
// DefaultReplicas) and initial members.
func New(replicas int, nodes ...string) *Ring {
	if replicas <= 0 {
		replicas = DefaultReplicas
	}
	r := &Ring{replicas: replicas}
	for _, n := range nodes {
		r.Add(n)
	}
	return r
}

// hash64 maps a string onto the circle. SHA-256 (truncated) rather than
// a fast non-cryptographic hash: ring placement must be identical
// across processes, architectures, and releases — the fleet's analogue
// of the LAT being part of the ROM image — and the coder ids being
// hashed are themselves SHA-256 hex, so keys are cheap to hash and
// adversarial clustering is not a concern.
func hash64(s string) uint64 {
	sum := sha256.Sum256([]byte(s))
	return binary.BigEndian.Uint64(sum[:8])
}

// Add inserts a node and its virtual points. Adding a present node is a
// no-op. Not safe to call concurrently with lookups.
func (r *Ring) Add(node string) {
	for _, n := range r.nodes {
		if n == node {
			return
		}
	}
	r.nodes = append(r.nodes, node)
	sort.Strings(r.nodes)
	r.rebuild()
}

// Remove deletes a node and its virtual points. Removing an absent node
// is a no-op. Not safe to call concurrently with lookups.
func (r *Ring) Remove(node string) {
	kept := r.nodes[:0]
	for _, n := range r.nodes {
		if n != node {
			kept = append(kept, n)
		}
	}
	if len(kept) == len(r.nodes) {
		return
	}
	r.nodes = kept
	r.rebuild()
}

// rebuild regenerates the point list from the member set. Points are
// derived only from node names, so the ring's shape is independent of
// insertion order.
func (r *Ring) rebuild() {
	r.points = r.points[:0]
	for ni, node := range r.nodes {
		for i := 0; i < r.replicas; i++ {
			r.points = append(r.points, point{
				hash: hash64(fmt.Sprintf("%s#%d", node, i)),
				node: ni,
			})
		}
	}
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].hash != r.points[j].hash {
			return r.points[i].hash < r.points[j].hash
		}
		// Hash ties (vanishingly rare with 64-bit SHA prefixes) break
		// by node name so the ring stays deterministic regardless.
		return r.nodes[r.points[i].node] < r.nodes[r.points[j].node]
	})
}

// Nodes returns the members in sorted order.
func (r *Ring) Nodes() []string {
	return append([]string(nil), r.nodes...)
}

// Len returns the member count.
func (r *Ring) Len() int { return len(r.nodes) }

// Owner returns the node owning key: the first virtual point clockwise
// from the key's hash. Empty string on an empty ring.
func (r *Ring) Owner(key string) string {
	if len(r.points) == 0 {
		return ""
	}
	return r.nodes[r.points[r.search(key)].node]
}

// search finds the index of the first point at or after the key's hash,
// wrapping past the top of the circle.
func (r *Ring) search(key string) int {
	h := hash64(key)
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		i = 0
	}
	return i
}

// Order returns every member in the key's failover order: the owner
// first, then each further distinct node in clockwise ring order. This
// is the routing contract the forwarder walks — when the owner is down,
// the key's requests all agree on the same next node, so failover
// traffic stays as concentrated as primary traffic.
func (r *Ring) Order(key string) []string {
	if len(r.points) == 0 {
		return nil
	}
	out := make([]string, 0, len(r.nodes))
	seen := make([]bool, len(r.nodes))
	start := r.search(key)
	for i := 0; i < len(r.points) && len(out) < len(r.nodes); i++ {
		p := r.points[(start+i)%len(r.points)]
		if !seen[p.node] {
			seen[p.node] = true
			out = append(out, r.nodes[p.node])
		}
	}
	return out
}
