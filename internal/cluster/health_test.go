package cluster

import (
	"context"
	"errors"
	"sync"
	"testing"
)

// scriptProbe returns a probe whose outcome per node is controlled by
// the test.
type scriptProbe struct {
	mu   sync.Mutex
	fail map[string]bool
}

func (p *scriptProbe) set(node string, failing bool) {
	p.mu.Lock()
	p.fail[node] = failing
	p.mu.Unlock()
}

func (p *scriptProbe) probe(_ context.Context, node string) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.fail[node] {
		return errors.New("scripted failure")
	}
	return nil
}

func newTestChecker(nodes ...string) (*Checker, *scriptProbe, *[]string) {
	p := &scriptProbe{fail: map[string]bool{}}
	var transitions []string
	c := NewChecker(CheckerConfig{
		Nodes:            nodes,
		FailThreshold:    3,
		RecoverThreshold: 2,
		Probe:            p.probe,
		OnTransition: func(node string, up bool) {
			state := "down"
			if up {
				state = "up"
			}
			transitions = append(transitions, node+"="+state)
		},
	})
	return c, p, &transitions
}

// TestCheckerStateMachine drives the full lifecycle: up at boot, down
// after FailThreshold consecutive probe failures, and up again only
// after RecoverThreshold consecutive successes.
func TestCheckerStateMachine(t *testing.T) {
	c, p, transitions := newTestChecker("a:1", "b:1")
	ctx := context.Background()

	if !c.Healthy("a:1") || !c.Healthy("b:1") {
		t.Fatal("nodes must start healthy")
	}
	if c.Healthy("unknown:1") {
		t.Fatal("unknown node reported healthy")
	}

	p.set("a:1", true)
	c.ProbeRound(ctx)
	c.ProbeRound(ctx)
	if !c.Healthy("a:1") {
		t.Fatal("a went down before FailThreshold consecutive failures")
	}
	c.ProbeRound(ctx)
	if c.Healthy("a:1") {
		t.Fatal("a still healthy after 3 consecutive probe failures")
	}
	if c.Healthy("b:1") != true {
		t.Fatal("b must stay healthy while a fails")
	}
	if c.UpCount() != 1 {
		t.Fatalf("UpCount = %d, want 1", c.UpCount())
	}

	// One good probe is not recovery; two are.
	p.set("a:1", false)
	c.ProbeRound(ctx)
	if c.Healthy("a:1") {
		t.Fatal("a recovered after a single good probe (RecoverThreshold=2)")
	}
	c.ProbeRound(ctx)
	if !c.Healthy("a:1") {
		t.Fatal("a did not recover after 2 consecutive good probes")
	}

	want := []string{"a:1=down", "a:1=up"}
	if len(*transitions) != len(want) || (*transitions)[0] != want[0] || (*transitions)[1] != want[1] {
		t.Errorf("transitions = %v, want %v", *transitions, want)
	}
}

// TestCheckerPassiveFailures pins the fast-ejection path: forwarding
// failures count toward the down threshold without an active probe, and
// a forwarding success resets the streak — but recovery of a down node
// needs active probes, so a half-dead node cannot flap back in on one
// lucky response.
func TestCheckerPassiveFailures(t *testing.T) {
	c, p, _ := newTestChecker("a:1")
	ctx := context.Background()

	c.ReportFailure("a:1", errors.New("connection refused"))
	c.ReportFailure("a:1", errors.New("connection refused"))
	c.ReportSuccess("a:1") // clears the streak
	c.ReportFailure("a:1", errors.New("connection refused"))
	c.ReportFailure("a:1", errors.New("connection refused"))
	if !c.Healthy("a:1") {
		t.Fatal("node down after a broken failure streak")
	}
	c.ReportFailure("a:1", errors.New("connection refused"))
	if c.Healthy("a:1") {
		t.Fatal("node still up after 3 consecutive forwarding failures")
	}

	// Forward successes alone never recover a down node.
	c.ReportSuccess("a:1")
	c.ReportSuccess("a:1")
	c.ReportSuccess("a:1")
	if c.Healthy("a:1") {
		t.Fatal("down node recovered from passive successes alone")
	}
	p.set("a:1", false)
	c.ProbeRound(ctx)
	c.ProbeRound(ctx)
	if !c.Healthy("a:1") {
		t.Fatal("down node did not recover from active probes")
	}

	// Snapshot carries the bookkeeping for /healthz and metrics.
	snap := c.Snapshot()
	if len(snap) != 1 || snap[0].Node != "a:1" || !snap[0].Up || snap[0].Flips != 2 {
		t.Errorf("snapshot = %+v, want a:1 up with 2 transitions", snap)
	}
}

// TestCheckerMixedSignals interleaves probe and forward failures: the
// streak is shared, so 2 forward failures + 1 probe failure eject.
func TestCheckerMixedSignals(t *testing.T) {
	c, p, _ := newTestChecker("a:1")
	c.ReportFailure("a:1", errors.New("5xx"))
	c.ReportFailure("a:1", errors.New("5xx"))
	p.set("a:1", true)
	c.ProbeRound(context.Background())
	if c.Healthy("a:1") {
		t.Fatal("mixed probe+forward failure streak did not eject the node")
	}
}
