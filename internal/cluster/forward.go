package cluster

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"net/http"
	"time"
)

// BackendHeader names the response header a router stamps with the
// backend node that served the request, so clients (ccrp-load) can
// observe per-node distribution without access to router internals.
const BackendHeader = "X-Ccrp-Backend"

// ForwarderConfig tunes a Forwarder. Zero fields select defaults.
type ForwarderConfig struct {
	// Ring supplies each key's failover order. Required.
	Ring *Ring
	// Health gates candidate selection and receives forwarding
	// outcomes. Required.
	Health *Checker
	// Client issues the backend requests. nil selects a plain
	// http.Client; per-attempt deadlines come from Timeout, not the
	// client.
	Client *http.Client
	// Timeout bounds one forwarded attempt; 0 selects 30s.
	Timeout time.Duration
	// MaxAttempts bounds the total tries per request across all
	// candidate nodes; 0 selects 3.
	MaxAttempts int
	// Backoff is the delay before the second attempt, doubling per
	// retry; 0 selects 25ms. The paper's refill engine retries nothing
	// — but its bus never loses a line; HTTP does.
	Backoff time.Duration
	// MaxBackoff caps the doubled delay; 0 selects 2s. Without a cap
	// the shift grows without bound (and past 63 doublings the shifted
	// value is garbage), so large MaxAttempts settings would sleep for
	// hours between late retries.
	MaxBackoff time.Duration
}

// Forwarder routes one request to the healthy node owning its key,
// failing over along the ring's successor order on connection errors
// and 5xx responses. Retryability relies on the service being
// idempotent by construction: training is content-addressed, compress
// and decompress are pure functions of their bodies, so replaying a
// request against a second node cannot double-apply anything.
type Forwarder struct {
	cfg ForwarderConfig
}

// NewForwarder builds a Forwarder.
func NewForwarder(cfg ForwarderConfig) *Forwarder {
	if cfg.Client == nil {
		cfg.Client = &http.Client{}
	}
	if cfg.Timeout <= 0 {
		cfg.Timeout = 30 * time.Second
	}
	if cfg.MaxAttempts <= 0 {
		cfg.MaxAttempts = 3
	}
	if cfg.Backoff <= 0 {
		cfg.Backoff = 25 * time.Millisecond
	}
	if cfg.MaxBackoff <= 0 {
		cfg.MaxBackoff = 2 * time.Second
	}
	return &Forwarder{cfg: cfg}
}

// Attempt records one forwarding try for logs and spans.
type Attempt struct {
	Node   string
	Status int // 0 on transport error
	Err    error
}

// Result is a completed forward: the backend response (body unread;
// the caller owns closing it) plus attribution.
type Result struct {
	Resp     *http.Response
	Node     string    // node that answered
	Attempts []Attempt // every try, in order; the last one succeeded
}

// FailedOver reports whether the answering node was not the first
// candidate tried.
func (r *Result) FailedOver() bool { return len(r.Attempts) > 1 }

// Candidates returns the nodes eligible for key in try order: healthy
// members in ring order. When every node is down the full ring order is
// returned instead — the checker may be stale, and trying a "down" node
// beats returning 503 unprobed.
func (f *Forwarder) Candidates(key string) []string {
	order := f.cfg.Ring.Order(key)
	healthy := order[:0:0]
	for _, n := range order {
		if f.cfg.Health.Healthy(n) {
			healthy = append(healthy, n)
		}
	}
	if len(healthy) == 0 {
		return order
	}
	return healthy
}

// Do forwards one request addressed by key: method and path (plus raw
// query) against the chosen node, with the given headers and body.
// Responses below 500 — including the service's typed 4xx errors — are
// successes from the routing layer's point of view and return
// immediately; connection errors and 5xx count against the node and
// fail over. The returned error is non-nil only when every attempt
// failed at the transport layer; a 5xx from the last candidate is
// returned as a Result so the client sees the backend's own words.
func (f *Forwarder) Do(ctx context.Context, key, method, pathAndQuery string, header http.Header, body []byte) (*Result, error) {
	candidates := f.Candidates(key)
	if len(candidates) == 0 {
		return nil, fmt.Errorf("cluster: no nodes for key %q", key)
	}
	res := &Result{}
	var lastErr error
	var last5xx *http.Response
	var timer *time.Timer
	defer func() {
		if timer != nil {
			timer.Stop()
		}
	}()
	for attempt := 0; attempt < f.cfg.MaxAttempts; attempt++ {
		if attempt > 0 {
			// Exponential backoff between tries, abandoned the moment
			// the client's own context expires. One timer serves every
			// retry; time.After would leak a timer per attempt until
			// its delay elapsed.
			delay := f.backoffDelay(attempt)
			if timer == nil {
				timer = time.NewTimer(delay)
			} else {
				timer.Reset(delay)
			}
			select {
			case <-ctx.Done():
				if last5xx != nil {
					last5xx.Body.Close()
				}
				return nil, ctx.Err()
			case <-timer.C:
			}
		}
		node := candidates[attempt%len(candidates)]
		resp, err := f.try(ctx, node, method, pathAndQuery, header, body)
		if err != nil {
			res.Attempts = append(res.Attempts, Attempt{Node: node, Err: err})
			f.cfg.Health.ReportFailure(node, err)
			lastErr = err
			if ctx.Err() != nil {
				if last5xx != nil {
					last5xx.Body.Close()
				}
				return nil, ctx.Err()
			}
			continue
		}
		if resp.StatusCode >= 500 {
			res.Attempts = append(res.Attempts, Attempt{Node: node, Status: resp.StatusCode})
			f.cfg.Health.ReportFailure(node, fmt.Errorf("backend %s: %s", node, resp.Status))
			if last5xx != nil {
				// Only the most recent 5xx body can still be relayed.
				last5xx.Body.Close()
			}
			last5xx = resp
			continue
		}
		res.Attempts = append(res.Attempts, Attempt{Node: node, Status: resp.StatusCode})
		res.Resp, res.Node = resp, node
		f.cfg.Health.ReportSuccess(node)
		if last5xx != nil {
			last5xx.Body.Close()
		}
		return res, nil
	}
	if last5xx != nil {
		// Every retry budget spent and the best outcome was a 5xx:
		// hand the backend's response through rather than inventing
		// our own, so error taxonomies survive the hop.
		res.Resp = last5xx
		res.Node = res.Attempts[len(res.Attempts)-1].Node
		return res, nil
	}
	return nil, fmt.Errorf("cluster: all %d attempts failed for key %q: %w",
		len(res.Attempts), key, lastErr)
}

// backoffDelay returns the capped exponential delay before the given
// attempt (attempt >= 1).
func (f *Forwarder) backoffDelay(attempt int) time.Duration {
	delay := f.cfg.Backoff
	for i := 1; i < attempt; i++ {
		delay *= 2
		if delay >= f.cfg.MaxBackoff || delay <= 0 { // <= 0: overflow
			return f.cfg.MaxBackoff
		}
	}
	if delay > f.cfg.MaxBackoff {
		return f.cfg.MaxBackoff
	}
	return delay
}

// try issues one attempt against one node under the per-attempt
// deadline.
func (f *Forwarder) try(ctx context.Context, node, method, pathAndQuery string, header http.Header, body []byte) (*http.Response, error) {
	actx, cancel := context.WithTimeout(ctx, f.cfg.Timeout)
	req, err := http.NewRequestWithContext(actx, method, "http://"+node+pathAndQuery, bytes.NewReader(body))
	if err != nil {
		cancel()
		return nil, err
	}
	for k, vs := range header {
		req.Header[k] = vs
	}
	resp, err := f.cfg.Client.Do(req)
	if err != nil {
		cancel()
		return nil, err
	}
	// Hand the cancel to the body: the caller (or the retry loop's
	// Close) releases the attempt context when done streaming.
	resp.Body = &cancelBody{ReadCloser: resp.Body, cancel: cancel}
	return resp, nil
}

// cancelBody ties an attempt's context cancellation to its body close.
type cancelBody struct {
	io.ReadCloser
	cancel context.CancelFunc
}

func (b *cancelBody) Close() error {
	err := b.ReadCloser.Close()
	b.cancel()
	return err
}
