package cluster

import (
	"context"
	"fmt"
	"net/http"
	"sync"
	"time"
)

// CheckerConfig tunes a Checker. The zero value of every field selects
// a production default.
type CheckerConfig struct {
	// Nodes is the fleet membership (host:port per node). Required.
	Nodes []string
	// Interval between active probe rounds; 0 selects 500ms.
	Interval time.Duration
	// Timeout bounds one probe; 0 selects 2s.
	Timeout time.Duration
	// FailThreshold is the consecutive-failure count that marks an up
	// node down; 0 selects 3.
	FailThreshold int
	// RecoverThreshold is the consecutive active-probe success count
	// that marks a down node up again; 0 selects 2.
	RecoverThreshold int
	// Probe checks one node, returning nil when it is ready to serve.
	// nil selects the HTTP default: GET http://node/readyz must answer
	// 200 within Timeout, so a draining ccrpd (readyz 503) leaves the
	// rotation before its listener closes.
	Probe func(ctx context.Context, node string) error
	// OnTransition, when set, is called on every up/down flip (not for
	// the initial states). Called from Run's goroutine and from
	// ReportFailure callers; must not block.
	OnTransition func(node string, up bool)
}

// nodeHealth is one node's state machine. Nodes start up — the fleet is
// presumed serving at boot, and the first probe round corrects any
// optimism within one Interval.
type nodeHealth struct {
	up         bool
	consecFail int // probe or forward failures since the last success
	consecOK   int // active-probe successes since the last failure
	lastErr    string
	lastProbe  time.Time
	flips      int // up/down transitions since boot
}

// NodeStatus is the exported snapshot of one node's health.
type NodeStatus struct {
	Node       string    `json:"node"`
	Up         bool      `json:"up"`
	ConsecFail int       `json:"consecutive_failures,omitempty"`
	LastErr    string    `json:"last_error,omitempty"`
	LastProbe  time.Time `json:"last_probe,omitempty"`
	Flips      int       `json:"transitions,omitempty"`
}

// Checker tracks per-node up/down state from two signals: active
// readiness probes on a fixed interval, and passive failure reports
// from the forwarding path. Passive reports share the consecutive-
// failure counter, so a kill -9'd backend is ejected after
// FailThreshold failed forwards without waiting out a probe round;
// recovery, by contrast, requires RecoverThreshold consecutive *active*
// probe successes, so a flapping node must prove itself before taking
// traffic again.
type Checker struct {
	cfg CheckerConfig

	mu    sync.Mutex
	state map[string]*nodeHealth
}

// NewChecker builds a checker with every node initially up. Call Run to
// start active probing.
func NewChecker(cfg CheckerConfig) *Checker {
	if cfg.Interval <= 0 {
		cfg.Interval = 500 * time.Millisecond
	}
	if cfg.Timeout <= 0 {
		cfg.Timeout = 2 * time.Second
	}
	if cfg.FailThreshold <= 0 {
		cfg.FailThreshold = 3
	}
	if cfg.RecoverThreshold <= 0 {
		cfg.RecoverThreshold = 2
	}
	if cfg.Probe == nil {
		client := &http.Client{Timeout: cfg.Timeout}
		cfg.Probe = func(ctx context.Context, node string) error {
			return httpProbe(ctx, client, node)
		}
	}
	c := &Checker{cfg: cfg, state: make(map[string]*nodeHealth, len(cfg.Nodes))}
	for _, n := range cfg.Nodes {
		c.state[n] = &nodeHealth{up: true}
	}
	return c
}

// httpProbe is the default readiness probe.
func httpProbe(ctx context.Context, client *http.Client, node string) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, "http://"+node+"/readyz", nil)
	if err != nil {
		return err
	}
	resp, err := client.Do(req)
	if err != nil {
		return err
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("readyz: %s", resp.Status)
	}
	return nil
}

// Run probes every node each Interval until ctx is done. One round
// probes nodes sequentially — fleets are small and probes cheap; a
// hung node costs at most Timeout per round.
func (c *Checker) Run(ctx context.Context) {
	ticker := time.NewTicker(c.cfg.Interval)
	defer ticker.Stop()
	for {
		c.ProbeRound(ctx)
		select {
		case <-ctx.Done():
			return
		case <-ticker.C:
		}
	}
}

// ProbeRound actively probes every node once (exported so tests and the
// router's startup can force a round without waiting an interval).
func (c *Checker) ProbeRound(ctx context.Context) {
	for _, node := range c.cfg.Nodes {
		if ctx.Err() != nil {
			return
		}
		pctx, cancel := context.WithTimeout(ctx, c.cfg.Timeout)
		err := c.cfg.Probe(pctx, node)
		cancel()
		if err != nil {
			c.reportFailure(node, err, true)
		} else {
			c.reportSuccess(node, true)
		}
	}
}

// ReportFailure feeds a forwarding failure (connect error or 5xx) into
// the node's state machine.
func (c *Checker) ReportFailure(node string, err error) { c.reportFailure(node, err, false) }

// ReportSuccess feeds a successful forward into the node's state
// machine: it clears the failure streak but does not count toward
// recovery (only active probes do).
func (c *Checker) ReportSuccess(node string) { c.reportSuccess(node, false) }

func (c *Checker) reportFailure(node string, err error, probed bool) {
	c.mu.Lock()
	st, ok := c.state[node]
	if !ok {
		c.mu.Unlock()
		return
	}
	st.consecFail++
	st.consecOK = 0
	if err != nil {
		st.lastErr = err.Error()
	}
	if probed {
		st.lastProbe = time.Now()
	}
	flipped := st.up && st.consecFail >= c.cfg.FailThreshold
	if flipped {
		st.up = false
		st.flips++
	}
	c.mu.Unlock()
	if flipped && c.cfg.OnTransition != nil {
		c.cfg.OnTransition(node, false)
	}
}

func (c *Checker) reportSuccess(node string, probed bool) {
	c.mu.Lock()
	st, ok := c.state[node]
	if !ok {
		c.mu.Unlock()
		return
	}
	st.consecFail = 0
	if probed {
		st.consecOK++
		st.lastProbe = time.Now()
		st.lastErr = ""
	}
	flipped := !st.up && probed && st.consecOK >= c.cfg.RecoverThreshold
	if flipped {
		st.up = true
		st.flips++
	}
	c.mu.Unlock()
	if flipped && c.cfg.OnTransition != nil {
		c.cfg.OnTransition(node, true)
	}
}

// Healthy reports whether the node is currently up. Unknown nodes are
// unhealthy.
func (c *Checker) Healthy(node string) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	st, ok := c.state[node]
	return ok && st.up
}

// UpCount returns how many nodes are currently up.
func (c *Checker) UpCount() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	n := 0
	for _, st := range c.state {
		if st.up {
			n++
		}
	}
	return n
}

// Snapshot returns every node's status in membership order.
func (c *Checker) Snapshot() []NodeStatus {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]NodeStatus, 0, len(c.cfg.Nodes))
	for _, node := range c.cfg.Nodes {
		st := c.state[node]
		out = append(out, NodeStatus{
			Node: node, Up: st.up,
			ConsecFail: st.consecFail,
			LastErr:    st.lastErr,
			LastProbe:  st.lastProbe,
			Flips:      st.flips,
		})
	}
	return out
}
