package riscv

// RVC: the RISC-V "C" standard compressed-instruction extension, RV32
// subset without floating point. Expand maps a 16-bit compressed
// halfword to the 32-bit instruction it abbreviates (the hardware
// expansion every RVC front end performs between fetch and decode);
// Compress is the inverse used by the size experiments. Together they
// model the fixed-dictionary alternative to the paper's per-program
// Huffman tables: RVC spends zero table bytes and decompresses in one
// gate level, but only ever halves the common instructions CCRP can
// squeeze below 16 bits.
//
// Bit-shuffle reference: "The RISC-V Instruction Set Manual, Volume I",
// chapter 16, and the Ripes rv_uncompress tables.

// bit extracts bit i of h.
func bit(h uint16, i uint) uint32 { return uint32(h>>i) & 1 }

// bits extracts the field h[hi:lo].
func bits(h uint16, hi, lo uint) uint32 {
	return uint32(h>>lo) & (1<<(hi-lo+1) - 1)
}

// signext sign-extends the low n bits of v.
func signext(v uint32, n uint) int32 {
	sh := 32 - n
	return int32(v<<sh) >> sh
}

// rdPrime maps a 3-bit compressed register field to x8..x15.
func rdPrime(f uint32) uint8 { return uint8(8 + f) }

// Expand decodes compressed halfword h into the 32-bit instruction it
// stands for. ok is false for encodings outside the RV32IC integer
// subset (including the all-zero illegal instruction and the FP loads
// and stores).
func Expand(h uint16) (uint32, bool) {
	if h == 0 {
		return 0, false // defined illegal instruction
	}
	quadrant := h & 3
	funct3 := bits(h, 15, 13)
	switch quadrant {
	case 0:
		rd := rdPrime(bits(h, 4, 2))
		rs1 := rdPrime(bits(h, 9, 7))
		switch funct3 {
		case 0: // c.addi4spn -> addi rd', sp, nzuimm
			uimm := bits(h, 12, 11)<<4 | bits(h, 10, 7)<<6 |
				bit(h, 6)<<2 | bit(h, 5)<<3
			if uimm == 0 {
				return 0, false // reserved
			}
			return Encode(Inst{Op: OpADDI, Rd: rd, Rs1: RegSP, Imm: int32(uimm)}), true
		case 2: // c.lw -> lw rd', uimm(rs1')
			uimm := bits(h, 12, 10)<<3 | bit(h, 6)<<2 | bit(h, 5)<<6
			return Encode(Inst{Op: OpLW, Rd: rd, Rs1: rs1, Imm: int32(uimm)}), true
		case 6: // c.sw -> sw rs2', uimm(rs1')
			uimm := bits(h, 12, 10)<<3 | bit(h, 6)<<2 | bit(h, 5)<<6
			return Encode(Inst{Op: OpSW, Rs2: rd, Rs1: rs1, Imm: int32(uimm)}), true
		}
		return 0, false // c.fld/c.flw/c.fsd/c.fsw and reserved
	case 1:
		switch funct3 {
		case 0: // c.nop / c.addi rd, rd, nzimm
			rd := uint8(bits(h, 11, 7))
			imm := signext(bit(h, 12)<<5|bits(h, 6, 2), 6)
			return Encode(Inst{Op: OpADDI, Rd: rd, Rs1: rd, Imm: imm}), true
		case 1: // c.jal -> jal ra, offset (RV32 only)
			return Encode(Inst{Op: OpJAL, Rd: RegRA, Imm: cjImm(h)}), true
		case 2: // c.li -> addi rd, x0, imm
			rd := uint8(bits(h, 11, 7))
			imm := signext(bit(h, 12)<<5|bits(h, 6, 2), 6)
			return Encode(Inst{Op: OpADDI, Rd: rd, Imm: imm}), true
		case 3:
			rd := uint8(bits(h, 11, 7))
			if rd == RegSP { // c.addi16sp -> addi sp, sp, nzimm
				imm := signext(bit(h, 12)<<9|bit(h, 6)<<4|bit(h, 5)<<6|
					bits(h, 4, 3)<<7|bit(h, 2)<<5, 10)
				if imm == 0 {
					return 0, false // reserved
				}
				return Encode(Inst{Op: OpADDI, Rd: RegSP, Rs1: RegSP, Imm: imm}), true
			}
			// c.lui rd, nzimm (rd != 0, 2)
			imm := signext(bit(h, 12)<<5|bits(h, 6, 2), 6)
			if rd == 0 || imm == 0 {
				return 0, false
			}
			return Encode(Inst{Op: OpLUI, Rd: rd, Imm: imm << 12}), true
		case 4:
			rd := rdPrime(bits(h, 9, 7))
			switch bits(h, 11, 10) {
			case 0: // c.srli
				if bit(h, 12) != 0 {
					return 0, false // shamt > 31: RV64 only
				}
				return Encode(Inst{Op: OpSRLI, Rd: rd, Rs1: rd, Imm: int32(bits(h, 6, 2))}), true
			case 1: // c.srai
				if bit(h, 12) != 0 {
					return 0, false
				}
				return Encode(Inst{Op: OpSRAI, Rd: rd, Rs1: rd, Imm: int32(bits(h, 6, 2))}), true
			case 2: // c.andi
				imm := signext(bit(h, 12)<<5|bits(h, 6, 2), 6)
				return Encode(Inst{Op: OpANDI, Rd: rd, Rs1: rd, Imm: imm}), true
			default: // register-register group
				if bit(h, 12) != 0 {
					return 0, false // c.subw/c.addw: RV64 only
				}
				rs2 := rdPrime(bits(h, 4, 2))
				ops := [4]Op{OpSUB, OpXOR, OpOR, OpAND}
				op := ops[bits(h, 6, 5)]
				return Encode(Inst{Op: op, Rd: rd, Rs1: rd, Rs2: rs2}), true
			}
		case 5: // c.j -> jal x0, offset
			return Encode(Inst{Op: OpJAL, Rd: RegZero, Imm: cjImm(h)}), true
		case 6: // c.beqz -> beq rs1', x0, offset
			return Encode(Inst{Op: OpBEQ, Rs1: rdPrime(bits(h, 9, 7)), Imm: cbImm(h)}), true
		case 7: // c.bnez -> bne rs1', x0, offset
			return Encode(Inst{Op: OpBNE, Rs1: rdPrime(bits(h, 9, 7)), Imm: cbImm(h)}), true
		}
	case 2:
		rd := uint8(bits(h, 11, 7))
		rs2 := uint8(bits(h, 6, 2))
		switch funct3 {
		case 0: // c.slli rd, rd, shamt
			if bit(h, 12) != 0 {
				return 0, false // shamt > 31: RV64 only
			}
			return Encode(Inst{Op: OpSLLI, Rd: rd, Rs1: rd, Imm: int32(bits(h, 6, 2))}), true
		case 2: // c.lwsp -> lw rd, uimm(sp)
			if rd == 0 {
				return 0, false // reserved
			}
			uimm := bit(h, 12)<<5 | bits(h, 6, 4)<<2 | bits(h, 3, 2)<<6
			return Encode(Inst{Op: OpLW, Rd: rd, Rs1: RegSP, Imm: int32(uimm)}), true
		case 4:
			if bit(h, 12) == 0 {
				if rs2 == 0 { // c.jr -> jalr x0, 0(rd)
					if rd == 0 {
						return 0, false // reserved
					}
					return Encode(Inst{Op: OpJALR, Rs1: rd}), true
				}
				// c.mv -> add rd, x0, rs2
				return Encode(Inst{Op: OpADD, Rd: rd, Rs2: rs2}), true
			}
			if rs2 == 0 {
				if rd == 0 { // c.ebreak
					return Encode(Inst{Op: OpEBREAK}), true
				}
				// c.jalr -> jalr ra, 0(rd)
				return Encode(Inst{Op: OpJALR, Rd: RegRA, Rs1: rd}), true
			}
			// c.add -> add rd, rd, rs2
			return Encode(Inst{Op: OpADD, Rd: rd, Rs1: rd, Rs2: rs2}), true
		case 6: // c.swsp -> sw rs2, uimm(sp)
			uimm := bits(h, 12, 9)<<2 | bits(h, 8, 7)<<6
			return Encode(Inst{Op: OpSW, Rs2: rs2, Rs1: RegSP, Imm: int32(uimm)}), true
		}
	}
	return 0, false
}

// cjImm extracts the CJ-format jump offset (c.j / c.jal).
func cjImm(h uint16) int32 {
	v := bit(h, 12)<<11 | bit(h, 11)<<4 | bits(h, 10, 9)<<8 |
		bit(h, 8)<<10 | bit(h, 7)<<6 | bit(h, 6)<<7 |
		bits(h, 5, 3)<<1 | bit(h, 2)<<5
	return signext(v, 12)
}

// cbImm extracts the CB-format branch offset (c.beqz / c.bnez).
func cbImm(h uint16) int32 {
	v := bit(h, 12)<<8 | bits(h, 11, 10)<<3 | bits(h, 6, 5)<<6 |
		bits(h, 4, 3)<<1 | bit(h, 2)<<5
	return signext(v, 9)
}

// Compress is the inverse of Expand: the 16-bit encoding of w if one
// exists. Pseudocode order mirrors the quadrant layout so each arm is
// easy to check against Expand.
func Compress(w uint32) (uint16, bool) {
	inst := Decode(w)
	reg8 := func(r uint8) bool { return r >= 8 && r < 16 }
	p := func(r uint8) uint16 { return uint16(r-8) & 7 }
	switch inst.Op {
	case OpADDI:
		imm := inst.Imm
		switch {
		case inst.Rs1 == RegSP && reg8(inst.Rd) &&
			imm > 0 && imm < 1024 && imm&3 == 0:
			// c.addi4spn
			u := uint32(imm)
			return uint16(0<<13 | (u>>4&3)<<11 | (u>>6&15)<<7 |
				(u>>2&1)<<6 | (u>>3&1)<<5 | uint32(p(inst.Rd))<<2 | 0), true
		case inst.Rs1 == RegSP && inst.Rd == RegSP &&
			imm != 0 && imm >= -512 && imm < 512 && imm&15 == 0:
			// c.addi16sp
			u := uint32(imm)
			return uint16(3<<13 | (u>>9&1)<<12 | 2<<7 | (u>>4&1)<<6 |
				(u>>6&1)<<5 | (u>>7&3)<<3 | (u>>5&1)<<2 | 1), true
		case inst.Rs1 == inst.Rd && imm >= -32 && imm < 32:
			// c.addi / c.nop
			u := uint32(imm)
			return uint16(0<<13 | (u>>5&1)<<12 | uint32(inst.Rd)<<7 |
				(u&31)<<2 | 1), true
		case inst.Rs1 == 0 && imm >= -32 && imm < 32:
			// c.li
			u := uint32(imm)
			return uint16(2<<13 | (u>>5&1)<<12 | uint32(inst.Rd)<<7 |
				(u&31)<<2 | 1), true
		}
	case OpJAL:
		if imm := inst.Imm; imm >= -2048 && imm < 2048 && imm&1 == 0 &&
			(inst.Rd == RegZero || inst.Rd == RegRA) {
			f3 := uint32(5) // c.j
			if inst.Rd == RegRA {
				f3 = 1 // c.jal
			}
			u := uint32(imm)
			return uint16(f3<<13 | (u>>11&1)<<12 | (u>>4&1)<<11 |
				(u>>8&3)<<9 | (u>>10&1)<<8 | (u>>6&1)<<7 | (u>>7&1)<<6 |
				(u>>1&7)<<3 | (u>>5&1)<<2 | 1), true
		}
	case OpLUI:
		hi := inst.Imm >> 12
		if inst.Rd != 0 && inst.Rd != RegSP && hi != 0 && hi >= -32 && hi < 32 {
			u := uint32(hi)
			return uint16(3<<13 | (u>>5&1)<<12 | uint32(inst.Rd)<<7 |
				(u&31)<<2 | 1), true
		}
	case OpSRLI, OpSRAI:
		if reg8(inst.Rd) && inst.Rs1 == inst.Rd {
			grp := uint32(0) // c.srli
			if inst.Op == OpSRAI {
				grp = 1
			}
			return uint16(4<<13 | grp<<10 | uint32(p(inst.Rd))<<7 |
				uint32(inst.Imm&31)<<2 | 1), true
		}
	case OpANDI:
		if reg8(inst.Rd) && inst.Rs1 == inst.Rd &&
			inst.Imm >= -32 && inst.Imm < 32 {
			u := uint32(inst.Imm)
			return uint16(4<<13 | (u>>5&1)<<12 | 2<<10 |
				uint32(p(inst.Rd))<<7 | (u&31)<<2 | 1), true
		}
	case OpSUB, OpXOR, OpOR, OpAND:
		if reg8(inst.Rd) && inst.Rs1 == inst.Rd && reg8(inst.Rs2) {
			var f2 uint32
			switch inst.Op {
			case OpSUB:
				f2 = 0
			case OpXOR:
				f2 = 1
			case OpOR:
				f2 = 2
			default:
				f2 = 3
			}
			return uint16(4<<13 | 3<<10 | uint32(p(inst.Rd))<<7 |
				f2<<5 | uint32(p(inst.Rs2))<<2 | 1), true
		}
	case OpBEQ, OpBNE:
		if reg8(inst.Rs1) && inst.Rs2 == 0 &&
			inst.Imm >= -256 && inst.Imm < 256 && inst.Imm&1 == 0 {
			f3 := uint32(6) // c.beqz
			if inst.Op == OpBNE {
				f3 = 7
			}
			u := uint32(inst.Imm)
			return uint16(f3<<13 | (u>>8&1)<<12 | (u>>3&3)<<10 |
				uint32(p(inst.Rs1))<<7 | (u>>6&3)<<5 | (u>>1&3)<<3 |
				(u>>5&1)<<2 | 1), true
		}
	case OpSLLI:
		if inst.Rs1 == inst.Rd {
			return uint16(0<<13 | uint32(inst.Rd)<<7 |
				uint32(inst.Imm&31)<<2 | 2), true
		}
	case OpLW:
		switch {
		case inst.Rs1 == RegSP && inst.Rd != 0 &&
			inst.Imm >= 0 && inst.Imm < 256 && inst.Imm&3 == 0:
			// c.lwsp
			u := uint32(inst.Imm)
			return uint16(2<<13 | (u>>5&1)<<12 | uint32(inst.Rd)<<7 |
				(u>>2&7)<<4 | (u>>6&3)<<2 | 2), true
		case reg8(inst.Rd) && reg8(inst.Rs1) &&
			inst.Imm >= 0 && inst.Imm < 128 && inst.Imm&3 == 0:
			// c.lw
			u := uint32(inst.Imm)
			return uint16(2<<13 | (u>>3&7)<<10 | uint32(p(inst.Rs1))<<7 |
				(u>>2&1)<<6 | (u>>6&1)<<5 | uint32(p(inst.Rd))<<2 | 0), true
		}
	case OpSW:
		switch {
		case inst.Rs1 == RegSP &&
			inst.Imm >= 0 && inst.Imm < 256 && inst.Imm&3 == 0:
			// c.swsp
			u := uint32(inst.Imm)
			return uint16(6<<13 | (u>>2&15)<<9 | (u>>6&3)<<7 |
				uint32(inst.Rs2)<<2 | 2), true
		case reg8(inst.Rs2) && reg8(inst.Rs1) &&
			inst.Imm >= 0 && inst.Imm < 128 && inst.Imm&3 == 0:
			// c.sw
			u := uint32(inst.Imm)
			return uint16(6<<13 | (u>>3&7)<<10 | uint32(p(inst.Rs1))<<7 |
				(u>>2&1)<<6 | (u>>6&1)<<5 | uint32(p(inst.Rs2))<<2 | 0), true
		}
	case OpJALR:
		if inst.Imm == 0 && inst.Rs1 != 0 {
			if inst.Rd == RegZero { // c.jr
				return uint16(4<<13 | uint32(inst.Rs1)<<7 | 2), true
			}
			if inst.Rd == RegRA { // c.jalr
				return uint16(4<<13 | 1<<12 | uint32(inst.Rs1)<<7 | 2), true
			}
		}
	case OpADD:
		if inst.Rs2 != 0 {
			if inst.Rs1 == 0 { // c.mv
				return uint16(4<<13 | uint32(inst.Rd)<<7 |
					uint32(inst.Rs2)<<2 | 2), true
			}
			if inst.Rs1 == inst.Rd { // c.add
				return uint16(4<<13 | 1<<12 | uint32(inst.Rd)<<7 |
					uint32(inst.Rs2)<<2 | 2), true
			}
		}
	case OpEBREAK:
		return uint16(4<<13 | 1<<12 | 2), true
	}
	return 0, false
}

// CompressedSize returns the idealized RVC size in bytes of the RV32
// text: each word that has a 16-bit encoding counts 2 bytes, the rest 4.
// This is the "fixed-dictionary compressor" baseline the experiments
// hold CCRP's per-program Huffman tables against.
func CompressedSize(text []byte) int {
	total := 0
	for off := 0; off+4 <= len(text); off += 4 {
		w := uint32(text[off]) | uint32(text[off+1])<<8 |
			uint32(text[off+2])<<16 | uint32(text[off+3])<<24
		if _, ok := Compress(w); ok {
			total += 2
		} else {
			total += 4
		}
	}
	return total + len(text)%4
}
