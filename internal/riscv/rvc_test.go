package riscv

import "testing"

// expandVectors are known RVC expansions cross-checked against
// `riscv32-unknown-elf-objdump` listings of GCC output: halfword,
// expanded 32-bit word, and the conventional disassembly of both.
var expandVectors = []struct {
	name string
	h    uint16
	want uint32
}{
	{"c.nop", 0x0001, 0x00000013},             // addi zero, zero, 0
	{"c.addi s0, 1", 0x0405, 0x00140413},      // addi s0, s0, 1
	{"c.li a0, 0", 0x4501, 0x00000513},        // addi a0, zero, 0
	{"c.li a0, 5", 0x4515, 0x00500513},        // addi a0, zero, 5
	{"c.lui a1, 0x1", 0x6585, 0x000015B7},     // lui a1, 0x1
	{"c.addi16sp -64", 0x7139, 0xFC010113},    // addi sp, sp, -64
	{"c.addi4spn a0, 8", 0x0028, 0x00810513},  // addi a0, sp, 8
	{"c.mv a0, a1", 0x852E, 0x00B00533},       // add a0, zero, a1
	{"c.add a0, a1", 0x952E, 0x00B50533},      // add a0, a0, a1
	{"c.sub a0, a1", 0x8D0D, 0x40B50533},      // sub a0, a0, a1
	{"c.andi a0, 15", 0x893D, 0x00F57513},     // andi a0, a0, 15
	{"c.srli a0, 2", 0x8109, 0x00255513},      // srli a0, a0, 2
	{"c.srai a0, 2", 0x8509, 0x40255513},      // srai a0, a0, 2
	{"c.slli a0, 2", 0x050A, 0x00251513},      // slli a0, a0, 2
	{"c.lw a0, 0(a1)", 0x4188, 0x0005A503},    // lw a0, 0(a1)
	{"c.sw a0, 0(a1)", 0xC188, 0x00A5A023},    // sw a0, 0(a1)
	{"c.lwsp a0, 0(sp)", 0x4502, 0x00012503},  // lw a0, 0(sp)
	{"c.swsp ra, 12(sp)", 0xC606, 0x00112623}, // sw ra, 12(sp)
	{"c.j .", 0xA001, 0x0000006F},             // jal zero, 0
	{"c.jal .", 0x2001, 0x000000EF},           // jal ra, 0
	{"c.beqz a0, +8", 0xC501, 0x00050463},     // beq a0, zero, +8
	{"c.bnez a0, +8", 0xE501, 0x00051463},     // bne a0, zero, +8
	{"c.jr ra (ret)", 0x8082, 0x00008067},     // jalr zero, 0(ra)
	{"c.jalr a0", 0x9502, 0x000500E7},         // jalr ra, 0(a0)
	{"c.ebreak", 0x9002, 0x00100073},          // ebreak
}

func TestExpandVectors(t *testing.T) {
	for _, v := range expandVectors {
		got, ok := Expand(v.h)
		if !ok {
			t.Errorf("%s: Expand(%#04x) not ok", v.name, v.h)
			continue
		}
		if got != v.want {
			t.Errorf("%s: Expand(%#04x) = %#08x (%s), want %#08x (%s)",
				v.name, v.h, got, Disassemble(got, 0), v.want, Disassemble(v.want, 0))
		}
	}
}

func TestExpandRejects(t *testing.T) {
	bad := []struct {
		name string
		h    uint16
	}{
		{"all-zero illegal", 0x0000},
		{"c.addi4spn uimm=0 reserved", 0x0008}, // nzuimm == 0
		{"c.fld (no FP)", 0x2000},
		{"c.flw (no FP)", 0x6000},
		{"c.fsd (no FP)", 0xA000},
		{"c.fsw (no FP)", 0xE000},
		{"c.addi16sp nzimm=0 reserved", 0x6101},
		{"c.lui nzimm=0 reserved", 0x6581},
		{"c.srli shamt>31 (RV64)", 0x9101},
		{"c.subw (RV64)", 0x9D01},
		{"c.slli shamt>31 (RV64)", 0x1502},
		{"c.lwsp rd=0 reserved", 0x4002},
		{"c.jr rd=0 reserved", 0x8002},
	}
	for _, v := range bad {
		if w, ok := Expand(v.h); ok {
			t.Errorf("%s: Expand(%#04x) = %#08x, want not ok (%s)",
				v.name, v.h, w, Disassemble(w, 0))
		}
	}
}

// TestExpandCompressDifferential is the exhaustive differential check:
// every expandable halfword must compress back to an encoding that
// expands to the identical 32-bit word, and every expansion must decode
// as a valid RV32 instruction.
func TestExpandCompressDifferential(t *testing.T) {
	expandable := 0
	for h := 0; h <= 0xFFFF; h++ {
		if uint16(h)&3 == 3 {
			// Not a compressed encoding at all (32-bit instruction
			// low bits); Expand must reject it.
			if _, ok := Expand(uint16(h)); ok {
				t.Fatalf("Expand(%#04x) accepted a non-compressed encoding", h)
			}
			continue
		}
		w, ok := Expand(uint16(h))
		if !ok {
			continue
		}
		expandable++
		if inst := Decode(w); inst.Op == OpInvalid {
			t.Fatalf("Expand(%#04x) = %#08x does not decode", h, w)
		}
		h2, ok := Compress(w)
		if !ok {
			t.Fatalf("Compress(Expand(%#04x)) = Compress(%#08x %s) not ok",
				h, w, Disassemble(w, 0))
		}
		w2, ok := Expand(h2)
		if !ok || w2 != w {
			t.Fatalf("Expand(Compress(%#08x)) = Expand(%#04x) = %#08x, ok=%v; want %#08x",
				w, h2, w2, ok, w)
		}
	}
	// Sanity: a healthy fraction of the 3/4 compressed space decodes.
	if expandable < 10000 {
		t.Errorf("only %d expandable halfwords; expander too strict", expandable)
	}
}

// TestCompressRejectsUncompressible spot-checks 32-bit instructions with
// no 16-bit form.
func TestCompressRejectsUncompressible(t *testing.T) {
	bad := []Inst{
		{Op: OpADDI, Rd: 10, Rs1: 11, Imm: 1},      // rd != rs1, rs1 != 0/sp
		{Op: OpADDI, Rd: 10, Rs1: 10, Imm: 100},    // imm out of 6-bit range
		{Op: OpXOR, Rd: 10, Rs1: 11, Rs2: 12},      // rd != rs1
		{Op: OpXOR, Rd: 20, Rs1: 20, Rs2: 21},      // not x8..x15
		{Op: OpLW, Rd: 10, Rs1: 11, Imm: 2},        // unscaled offset
		{Op: OpLW, Rd: 10, Rs1: 11, Imm: 128},      // offset out of range
		{Op: OpSW, Rs2: 10, Rs1: 11, Imm: -4},      // negative offset
		{Op: OpBEQ, Rs1: 10, Rs2: 11, Imm: 8},      // rs2 != x0
		{Op: OpBEQ, Rs1: 10, Rs2: 0, Imm: 1 << 10}, // offset out of range
		{Op: OpJAL, Rd: 5, Imm: 8},                 // link register not ra/zero
		{Op: OpJALR, Rd: RegRA, Rs1: 10, Imm: 4},   // nonzero offset
		{Op: OpLUI, Rd: 10, Imm: 0x12345 << 12},    // hi20 out of 6-bit range
		{Op: OpAUIPC, Rd: 10, Imm: 1 << 12},        // no compressed auipc
		{Op: OpMUL, Rd: 10, Rs1: 10, Rs2: 11},      // no compressed M
		{Op: OpECALL},                              // no compressed ecall
	}
	for _, inst := range bad {
		w := Encode(inst)
		if h, ok := Compress(w); ok {
			t.Errorf("Compress(%#08x %s) = %#04x, want not ok",
				w, Disassemble(w, 0), h)
		}
	}
}

func TestCompressedSize(t *testing.T) {
	le := func(words ...uint32) []byte {
		var b []byte
		for _, w := range words {
			b = append(b, byte(w), byte(w>>8), byte(w>>16), byte(w>>24))
		}
		return b
	}
	// add a0,a0,a1 (2 bytes) + ecall (4 bytes)
	text := le(Encode(Inst{Op: OpADD, Rd: 10, Rs1: 10, Rs2: 11}),
		Encode(Inst{Op: OpECALL}))
	if got := CompressedSize(text); got != 6 {
		t.Errorf("CompressedSize = %d, want 6", got)
	}
	if got := CompressedSize(nil); got != 0 {
		t.Errorf("CompressedSize(nil) = %d, want 0", got)
	}
}
