// Package riscv is the RV32I(+M) backend of the ISA abstraction layer:
// word decode/encode, disassembly, an assembler backend for internal/asm,
// an executor for internal/sim, and an RVC (compressed-instruction)
// expander. The RVC expander is the point of the exercise: RISC-V's "C"
// extension is the ISA-level answer to the code-size problem the paper
// attacks with block-bounded Huffman compression, and having both in one
// tree lets the experiments compare CCRP ratios against native 16-bit
// encodings on identical programs.
package riscv

import (
	"fmt"
	"strings"

	"ccrp/internal/isa"
)

// ABI register numbers used by the backend.
const (
	RegZero uint8 = 0
	RegRA   uint8 = 1
	RegSP   uint8 = 2
	RegGP   uint8 = 3
	RegA0   uint8 = 10
	RegA7   uint8 = 17
)

var regNames = [32]string{
	"zero", "ra", "sp", "gp", "tp", "t0", "t1", "t2",
	"s0", "s1", "a0", "a1", "a2", "a3", "a4", "a5",
	"a6", "a7", "s2", "s3", "s4", "s5", "s6", "s7",
	"s8", "s9", "s10", "s11", "t3", "t4", "t5", "t6",
}

// RegName returns the ABI name of integer register r.
func RegName(r uint8) string {
	if r < 32 {
		return regNames[r]
	}
	return fmt.Sprintf("?x%d", r)
}

// FPRegName names FP register r. RV32I has no FP register file; the
// names follow the F-extension convention so debugger output stays
// well-formed.
func FPRegName(r uint8) string {
	if r < 32 {
		return fmt.Sprintf("f%d", r)
	}
	return fmt.Sprintf("?f%d", r)
}

// RegNumber resolves an ABI name, "fp", or "xN" to a register number.
func RegNumber(name string) (uint8, bool) {
	name = strings.ToLower(name)
	for i, n := range regNames {
		if name == n {
			return uint8(i), true
		}
	}
	if name == "fp" {
		return 8, true
	}
	if strings.HasPrefix(name, "x") {
		var n int
		if _, err := fmt.Sscanf(name, "x%d", &n); err == nil && n >= 0 && n < 32 {
			return uint8(n), true
		}
	}
	return 0, false
}

// Backend implements the isa interfaces for RV32I+M.
type Backend struct{}

func init() { isa.Register(Backend{}) }

var (
	_ isa.ISA            = Backend{}
	_ isa.AsmBackend     = Backend{}
	_ isa.ExecBackend    = Backend{}
	_ isa.InstParser     = Backend{}
	_ isa.WordEnumerator = Backend{}
)

// Name implements isa.ISA.
func (Backend) Name() string { return "rv32" }

// WordBytes implements isa.ISA (text is stored as uncompressed 32-bit
// words; RVC halfwords exist only through the Expand/Compress pair).
func (Backend) WordBytes() int { return 4 }

// Decode implements isa.ISA.
func (Backend) Decode(w isa.Word, pc uint32) isa.Info {
	inst := Decode(uint32(w))
	info := isa.Info{
		Valid:    inst.Op != OpInvalid,
		Class:    inst.Op.Class(),
		Mnemonic: inst.Op.String(),
	}
	switch inst.Op {
	case OpBEQ, OpBNE, OpBLT, OpBGE, OpBLTU, OpBGEU:
		info.IsBranch = true
		info.Target, info.TargetKnown = pc+uint32(inst.Imm), true
	case OpJAL:
		info.IsJump = true
		info.Target, info.TargetKnown = pc+uint32(inst.Imm), true
	case OpJALR:
		info.IsJump = true
	case OpLB, OpLH, OpLW, OpLBU, OpLHU:
		info.IsLoad = true
	case OpSB, OpSH, OpSW:
		info.IsStore = true
	}
	return info
}

// Disassemble implements isa.ISA.
func (Backend) Disassemble(w isa.Word, pc uint32) string {
	return Disassemble(uint32(w), pc)
}

// RegName implements isa.ISA.
func (Backend) RegName(r uint8) string { return RegName(r) }

// FPRegName implements isa.ISA.
func (Backend) FPRegName(r uint8) string { return FPRegName(r) }

// RegNumber implements isa.ISA.
func (Backend) RegNumber(name string) (uint8, bool) { return RegNumber(name) }
