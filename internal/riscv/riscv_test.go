package riscv_test

import (
	"bytes"
	"strings"
	"testing"

	"ccrp/internal/asm"
	"ccrp/internal/isa"
	"ccrp/internal/riscv"
	"ccrp/internal/sim"
)

func TestDecodeEncodeRoundTrip(t *testing.T) {
	for _, w := range (riscv.Backend{}).ContractWords() {
		inst := riscv.Decode(uint32(w))
		if inst.Op == riscv.OpInvalid {
			t.Fatalf("contract word %#08x does not decode", uint32(w))
		}
		if got := riscv.Encode(inst); got != uint32(w) {
			t.Errorf("Encode(Decode(%#08x)) = %#08x", uint32(w), got)
		}
	}
}

func TestDecodeRejectsGarbage(t *testing.T) {
	for _, w := range []uint32{
		0x00000000,                 // all zero
		0xFFFFFFFF,                 // all ones
		0x0000007F,                 // unused opcode space
		0x02000013 | 1<<12 | 1<<25, // slli with funct7 != 0
		0x00007067,                 // jalr funct3 != 0
		0x00003003,                 // load funct3 = 3 (ld: RV64)
		0x00003023,                 // store funct3 = 3 (sd: RV64)
		0x00002073,                 // csrrs (unimplemented)
	} {
		if inst := riscv.Decode(w); inst.Op != riscv.OpInvalid {
			t.Errorf("Decode(%#08x) = %v, want invalid", w, inst.Op)
		}
	}
}

func TestDisassembleForms(t *testing.T) {
	cases := []struct {
		w    uint32
		pc   uint32
		want string
	}{
		{0x00C58533, 0, "add a0, a1, a2"},
		{0xFFB58513, 0, "addi a0, a1, -5"},
		{0x00812503, 0, "lw a0, 8(sp)"},
		{0x00A12423, 0, "sw a0, 8(sp)"},
		{0x00B51463, 0x1000, "bne a0, a1, 0x00001008"},
		{0x008000EF, 0x1000, "jal ra, 0x00001008"},
		{0x00850067, 0, "jalr zero, 8(a0)"},
		{0x12345537, 0, "lui a0, 0x12345"},
		{0x00000073, 0, "ecall"},
		{0x00100073, 0, "ebreak"},
		{0xFFFFFFFF, 0, ".word 0xffffffff"},
	}
	for _, c := range cases {
		if got := riscv.Disassemble(c.w, c.pc); got != c.want {
			t.Errorf("Disassemble(%#08x, %#x) = %q, want %q", c.w, c.pc, got, c.want)
		}
	}
}

func TestRegNames(t *testing.T) {
	for r := uint8(0); r < 32; r++ {
		name := riscv.RegName(r)
		if strings.HasPrefix(name, "?") {
			t.Fatalf("RegName(%d) = %q", r, name)
		}
		n, ok := riscv.RegNumber(name)
		if !ok || n != r {
			t.Errorf("RegNumber(%q) = %d, %v; want %d", name, n, ok, r)
		}
	}
	if riscv.RegName(40) != "?x40" {
		t.Errorf("RegName(40) = %q", riscv.RegName(40))
	}
	if riscv.FPRegName(40) != "?f40" {
		t.Errorf("FPRegName(40) = %q", riscv.FPRegName(40))
	}
	if n, ok := riscv.RegNumber("fp"); !ok || n != 8 {
		t.Errorf("RegNumber(fp) = %d, %v", n, ok)
	}
	if n, ok := riscv.RegNumber("x13"); !ok || n != 13 {
		t.Errorf("RegNumber(x13) = %d, %v", n, ok)
	}
	if _, ok := riscv.RegNumber("x32"); ok {
		t.Error("RegNumber(x32) accepted")
	}
}

// run assembles src for rv32, simulates it, and returns the console
// output and result.
func run(t *testing.T, src string) (*sim.Result, string) {
	t.Helper()
	prog, err := asm.AssembleFor("rv32", "test.s", src)
	if err != nil {
		t.Fatalf("assemble: %v", err)
	}
	if prog.ISA != "rv32" {
		t.Fatalf("program ISA = %q, want rv32", prog.ISA)
	}
	var out bytes.Buffer
	m := sim.New(prog, sim.Config{Stdout: &out, MaxInstr: 1_000_000})
	res, err := m.Run()
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	return res, out.String()
}

func TestExecSmallProgram(t *testing.T) {
	// Sum 1..10 with a loop, print, exit.
	_, out := run(t, `
	.text
__start:
	li	a1, 10
	li	a2, 0
loop:
	add	a2, a2, a1
	addi	a1, a1, -1
	bnez	a1, loop
	mv	a0, a2
	li	a7, 1
	ecall
	li	a7, 10
	ecall
`)
	if out != "55" {
		t.Errorf("output = %q, want 55", out)
	}
}

func TestExecMemoryAndCalls(t *testing.T) {
	_, out := run(t, `
	.data
msg:	.asciiz "ok\n"
vals:	.word 7, 35
	.text
__start:
	la	a0, msg
	li	a7, 4
	ecall
	la	t0, vals
	lw	a1, 0(t0)
	lw	a2, 4(t0)
	call	mul6
	li	a7, 1
	ecall
	li	a7, 10
	ecall
mul6:
	addi	sp, sp, -8
	sw	ra, 4(sp)
	mul	a0, a1, a2
	rem	a3, a0, a2
	add	a0, a0, a3
	lw	ra, 4(sp)
	addi	sp, sp, 8
	ret
`)
	if out != "ok\n245" {
		t.Errorf("output = %q, want ok-then-245", out)
	}
}

func TestExecClassCounting(t *testing.T) {
	res, _ := run(t, `
	.text
__start:
	li	a0, 6
	li	a1, 7
	mul	a0, a0, a1
	li	a7, 10
	ecall
`)
	if res.Instructions != 5 {
		t.Errorf("instructions = %d, want 5", res.Instructions)
	}
	if res.Stalls == 0 {
		t.Error("mul produced no stalls")
	}
}

func TestExecLoadUseStall(t *testing.T) {
	withUse, _ := run(t, `
	.data
v:	.word 3
	.text
__start:
	la	t0, v
	lw	a0, 0(t0)
	addi	a0, a0, 1
	li	a7, 10
	ecall
`)
	withoutUse, _ := run(t, `
	.data
v:	.word 3
	.text
__start:
	la	t0, v
	lw	a0, 0(t0)
	addi	a1, zero, 1
	li	a7, 10
	ecall
`)
	if withUse.Stalls != withoutUse.Stalls+1 {
		t.Errorf("load-use stalls: with=%d without=%d, want +1",
			withUse.Stalls, withoutUse.Stalls)
	}
}

func TestExecFaults(t *testing.T) {
	prog, err := asm.AssembleFor("rv32", "t.s", "\t.text\n__start:\n\tebreak\n")
	if err != nil {
		t.Fatal(err)
	}
	m := sim.New(prog, sim.Config{MaxInstr: 10})
	if _, err := m.Run(); err == nil {
		t.Error("ebreak did not fault")
	}
}

func TestImageCarriesISA(t *testing.T) {
	prog, err := asm.AssembleFor("rv32", "t.s", `
	.text
__start:
	li	a0, 9
	li	a7, 1
	ecall
	li	a7, 10
	ecall
`)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := prog.WriteImage(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := asm.ReadImage(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.ISA != "rv32" {
		t.Fatalf("round-tripped ISA = %q", back.ISA)
	}
	var out bytes.Buffer
	m := sim.New(back, sim.Config{Stdout: &out, MaxInstr: 100})
	if _, err := m.Run(); err != nil {
		t.Fatal(err)
	}
	if out.String() != "9" {
		t.Errorf("output = %q, want 9", out.String())
	}
}

func TestInfoClassification(t *testing.T) {
	be := isa.MustLookup("rv32")
	cases := []struct {
		src  string
		pc   uint32
		chk  func(isa.Info) bool
		desc string
	}{
		{"beq a0, a1, 0x20", 0x10, func(i isa.Info) bool {
			return i.IsBranch && i.TargetKnown && i.Target == 0x20 && !i.HasDelaySlot
		}, "branch target"},
		{"jal ra, 0x40", 0x10, func(i isa.Info) bool {
			return i.IsJump && i.TargetKnown && i.Target == 0x40
		}, "jal target"},
		{"jalr zero, 0(ra)", 0, func(i isa.Info) bool {
			return i.IsJump && !i.TargetKnown
		}, "jalr unknown target"},
		{"lw a0, 0(sp)", 0, func(i isa.Info) bool { return i.IsLoad }, "load"},
		{"sw a0, 0(sp)", 0, func(i isa.Info) bool { return i.IsStore }, "store"},
	}
	parser := be.(isa.InstParser)
	for _, c := range cases {
		w, err := parser.ParseInst(c.src, c.pc)
		if err != nil {
			t.Fatalf("%s: %v", c.desc, err)
		}
		info := be.Decode(w, c.pc)
		if !info.Valid || !c.chk(info) {
			t.Errorf("%s: info = %+v", c.desc, info)
		}
	}
}
