package riscv

import (
	"fmt"
	"strconv"
	"strings"

	"ccrp/internal/isa"
)

// ParseInst implements isa.InstParser: the inverse of Disassemble for a
// single statement at address pc.
func (b Backend) ParseInst(src string, pc uint32) (isa.Word, error) {
	src = strings.TrimSpace(src)
	sp := strings.IndexFunc(src, func(r rune) bool { return r == ' ' || r == '\t' })
	op, rest := src, ""
	if sp >= 0 {
		op, rest = src[:sp], strings.TrimSpace(src[sp+1:])
	}
	op = strings.ToLower(op)
	if op == ".word" {
		v, err := strconv.ParseUint(rest, 0, 32)
		if err != nil {
			return 0, fmt.Errorf("bad .word operand %q", rest)
		}
		return isa.Word(v), nil
	}
	var args []string
	if rest != "" {
		for _, a := range strings.Split(rest, ",") {
			args = append(args, strings.TrimSpace(a))
		}
	}
	words, err := b.EncodeInst(op, args, pc, rvConstEval)
	if err != nil {
		return 0, err
	}
	if len(words) != 1 {
		return 0, fmt.Errorf("%q is a %d-word pseudo, not one instruction", src, len(words))
	}
	return words[0], nil
}

// rvConstEval evaluates the numeric operands disassembly produces.
func rvConstEval(s string) (uint32, error) {
	s = strings.TrimSpace(s)
	neg := false
	if strings.HasPrefix(s, "-") {
		neg = true
		s = s[1:]
	}
	v, err := strconv.ParseUint(s, 0, 32)
	if err != nil {
		return 0, fmt.Errorf("bad constant %q", s)
	}
	if neg {
		return -uint32(v), nil
	}
	return uint32(v), nil
}

// ContractWords implements isa.WordEnumerator: a representative valid
// encoding of every operation with varied fields.
func (Backend) ContractWords() []isa.Word {
	insts := []Inst{
		{Op: OpLUI, Rd: 10, Imm: 0x12345 << 12},
		{Op: OpLUI, Rd: 31, Imm: -1 << 12}, // hi20 = 0xFFFFF
		{Op: OpAUIPC, Rd: 5, Imm: 0x00400 << 12},
		{Op: OpJAL, Rd: RegRA, Imm: 0x40},
		{Op: OpJAL, Rd: RegZero, Imm: -0x10},
		{Op: OpJALR, Rd: RegRA, Rs1: 10, Imm: 8},
		{Op: OpJALR, Rs1: RegRA},
		{Op: OpBEQ, Rs1: 10, Rs2: 11, Imm: 0x10},
		{Op: OpBNE, Rs1: 10, Rs2: 11, Imm: -0x10},
		{Op: OpBLT, Rs1: 8, Rs2: 9, Imm: 0x40},
		{Op: OpBGE, Rs1: 8, Rs2: 9, Imm: -0x40},
		{Op: OpBLTU, Rs1: 12, Rs2: 13, Imm: 0x100},
		{Op: OpBGEU, Rs1: 12, Rs2: 13, Imm: -0x100},
		{Op: OpLB, Rd: 10, Rs1: 2, Imm: -4},
		{Op: OpLH, Rd: 10, Rs1: 2, Imm: 2},
		{Op: OpLW, Rd: 10, Rs1: 2, Imm: 8},
		{Op: OpLBU, Rd: 11, Rs1: 3, Imm: 1},
		{Op: OpLHU, Rd: 11, Rs1: 3, Imm: 6},
		{Op: OpSB, Rs2: 10, Rs1: 2, Imm: -1},
		{Op: OpSH, Rs2: 10, Rs1: 2, Imm: 2},
		{Op: OpSW, Rs2: 10, Rs1: 2, Imm: 12},
		{Op: OpADDI, Rd: 10, Rs1: 11, Imm: -5},
		{Op: OpADDI}, // nop
		{Op: OpSLTI, Rd: 10, Rs1: 11, Imm: 7},
		{Op: OpSLTIU, Rd: 10, Rs1: 11, Imm: 1},
		{Op: OpXORI, Rd: 10, Rs1: 11, Imm: -1},
		{Op: OpORI, Rd: 10, Rs1: 11, Imm: 0xFF},
		{Op: OpANDI, Rd: 10, Rs1: 11, Imm: 0x0F},
		{Op: OpSLLI, Rd: 10, Rs1: 11, Imm: 3},
		{Op: OpSRLI, Rd: 10, Rs1: 11, Imm: 17},
		{Op: OpSRAI, Rd: 10, Rs1: 11, Imm: 31},
		{Op: OpADD, Rd: 10, Rs1: 11, Rs2: 12},
		{Op: OpSUB, Rd: 10, Rs1: 11, Rs2: 12},
		{Op: OpSLL, Rd: 13, Rs1: 14, Rs2: 15},
		{Op: OpSLT, Rd: 13, Rs1: 14, Rs2: 15},
		{Op: OpSLTU, Rd: 13, Rs1: 14, Rs2: 15},
		{Op: OpXOR, Rd: 16, Rs1: 17, Rs2: 18},
		{Op: OpSRL, Rd: 16, Rs1: 17, Rs2: 18},
		{Op: OpSRA, Rd: 16, Rs1: 17, Rs2: 18},
		{Op: OpOR, Rd: 19, Rs1: 20, Rs2: 21},
		{Op: OpAND, Rd: 19, Rs1: 20, Rs2: 21},
		{Op: OpMUL, Rd: 10, Rs1: 11, Rs2: 12},
		{Op: OpMULH, Rd: 10, Rs1: 11, Rs2: 12},
		{Op: OpMULHSU, Rd: 10, Rs1: 11, Rs2: 12},
		{Op: OpMULHU, Rd: 10, Rs1: 11, Rs2: 12},
		{Op: OpDIV, Rd: 13, Rs1: 14, Rs2: 15},
		{Op: OpDIVU, Rd: 13, Rs1: 14, Rs2: 15},
		{Op: OpREM, Rd: 13, Rs1: 14, Rs2: 15},
		{Op: OpREMU, Rd: 13, Rs1: 14, Rs2: 15},
		{Op: OpFENCE},
		{Op: OpECALL},
		{Op: OpEBREAK},
	}
	words := make([]isa.Word, len(insts))
	for i, inst := range insts {
		words[i] = isa.Word(Encode(inst))
	}
	return words
}
