package riscv

import (
	"fmt"

	"ccrp/internal/isa"
)

// RV32I base opcodes (bits 6:0).
const (
	opcLUI    = 0x37
	opcAUIPC  = 0x17
	opcJAL    = 0x6F
	opcJALR   = 0x67
	opcBranch = 0x63
	opcLoad   = 0x03
	opcStore  = 0x23
	opcOpImm  = 0x13
	opcOp     = 0x33
	opcMiscM  = 0x0F
	opcSystem = 0x73
)

// Op identifies one RV32I+M operation.
type Op uint8

const (
	OpInvalid Op = iota
	OpLUI
	OpAUIPC
	OpJAL
	OpJALR
	OpBEQ
	OpBNE
	OpBLT
	OpBGE
	OpBLTU
	OpBGEU
	OpLB
	OpLH
	OpLW
	OpLBU
	OpLHU
	OpSB
	OpSH
	OpSW
	OpADDI
	OpSLTI
	OpSLTIU
	OpXORI
	OpORI
	OpANDI
	OpSLLI
	OpSRLI
	OpSRAI
	OpADD
	OpSUB
	OpSLL
	OpSLT
	OpSLTU
	OpXOR
	OpSRL
	OpSRA
	OpOR
	OpAND
	OpMUL
	OpMULH
	OpMULHSU
	OpMULHU
	OpDIV
	OpDIVU
	OpREM
	OpREMU
	OpFENCE
	OpECALL
	OpEBREAK
	numOps
)

var opTable = [numOps]struct {
	name  string
	class isa.Class
}{
	OpInvalid: {"invalid", isa.ClassSys},
	OpLUI:     {"lui", isa.ClassALU},
	OpAUIPC:   {"auipc", isa.ClassALU},
	OpJAL:     {"jal", isa.ClassJump},
	OpJALR:    {"jalr", isa.ClassJump},
	OpBEQ:     {"beq", isa.ClassBranch},
	OpBNE:     {"bne", isa.ClassBranch},
	OpBLT:     {"blt", isa.ClassBranch},
	OpBGE:     {"bge", isa.ClassBranch},
	OpBLTU:    {"bltu", isa.ClassBranch},
	OpBGEU:    {"bgeu", isa.ClassBranch},
	OpLB:      {"lb", isa.ClassLoad},
	OpLH:      {"lh", isa.ClassLoad},
	OpLW:      {"lw", isa.ClassLoad},
	OpLBU:     {"lbu", isa.ClassLoad},
	OpLHU:     {"lhu", isa.ClassLoad},
	OpSB:      {"sb", isa.ClassStore},
	OpSH:      {"sh", isa.ClassStore},
	OpSW:      {"sw", isa.ClassStore},
	OpADDI:    {"addi", isa.ClassALU},
	OpSLTI:    {"slti", isa.ClassALU},
	OpSLTIU:   {"sltiu", isa.ClassALU},
	OpXORI:    {"xori", isa.ClassALU},
	OpORI:     {"ori", isa.ClassALU},
	OpANDI:    {"andi", isa.ClassALU},
	OpSLLI:    {"slli", isa.ClassShift},
	OpSRLI:    {"srli", isa.ClassShift},
	OpSRAI:    {"srai", isa.ClassShift},
	OpADD:     {"add", isa.ClassALU},
	OpSUB:     {"sub", isa.ClassALU},
	OpSLL:     {"sll", isa.ClassShift},
	OpSLT:     {"slt", isa.ClassALU},
	OpSLTU:    {"sltu", isa.ClassALU},
	OpXOR:     {"xor", isa.ClassALU},
	OpSRL:     {"srl", isa.ClassShift},
	OpSRA:     {"sra", isa.ClassShift},
	OpOR:      {"or", isa.ClassALU},
	OpAND:     {"and", isa.ClassALU},
	OpMUL:     {"mul", isa.ClassMulDiv},
	OpMULH:    {"mulh", isa.ClassMulDiv},
	OpMULHSU:  {"mulhsu", isa.ClassMulDiv},
	OpMULHU:   {"mulhu", isa.ClassMulDiv},
	OpDIV:     {"div", isa.ClassMulDiv},
	OpDIVU:    {"divu", isa.ClassMulDiv},
	OpREM:     {"rem", isa.ClassMulDiv},
	OpREMU:    {"remu", isa.ClassMulDiv},
	OpFENCE:   {"fence", isa.ClassSys},
	OpECALL:   {"ecall", isa.ClassSys},
	OpEBREAK:  {"ebreak", isa.ClassSys},
}

// String returns the mnemonic.
func (o Op) String() string {
	if o < numOps {
		return opTable[o].name
	}
	return "invalid"
}

// Class returns the pipeline class.
func (o Op) Class() isa.Class {
	if o < numOps {
		return opTable[o].class
	}
	return isa.ClassSys
}

// Inst is one decoded RV32I+M instruction.
type Inst struct {
	Op  Op
	Rd  uint8
	Rs1 uint8
	Rs2 uint8
	Imm int32 // sign-extended immediate (shamt for shifts, imm20<<12 for LUI/AUIPC)
}

// immI extracts the sign-extended I-type immediate.
func immI(w uint32) int32 { return int32(w) >> 20 }

// immS extracts the sign-extended S-type immediate.
func immS(w uint32) int32 {
	return int32(w&0xFE000000)>>20 | int32(w>>7&0x1F)
}

// immB extracts the sign-extended B-type immediate.
func immB(w uint32) int32 {
	return int32(w&0x80000000)>>19 |
		int32(w<<4&0x800) | // bit 7 -> imm[11]
		int32(w>>20&0x7E0) |
		int32(w>>7&0x1E)
}

// immU extracts the U-type immediate (already shifted into place).
func immU(w uint32) int32 { return int32(w & 0xFFFFF000) }

// immJ extracts the sign-extended J-type immediate.
func immJ(w uint32) int32 {
	return int32(w&0x80000000)>>11 |
		int32(w&0x000FF000) | // imm[19:12]
		int32(w>>9&0x800) | // bit 20 -> imm[11]
		int32(w>>20&0x7FE)
}

// Decode decodes one 32-bit word. Invalid encodings produce OpInvalid.
func Decode(w uint32) Inst {
	rd := uint8(w >> 7 & 0x1F)
	rs1 := uint8(w >> 15 & 0x1F)
	rs2 := uint8(w >> 20 & 0x1F)
	f3 := w >> 12 & 7
	f7 := w >> 25
	switch w & 0x7F {
	case opcLUI:
		return Inst{Op: OpLUI, Rd: rd, Imm: immU(w)}
	case opcAUIPC:
		return Inst{Op: OpAUIPC, Rd: rd, Imm: immU(w)}
	case opcJAL:
		return Inst{Op: OpJAL, Rd: rd, Imm: immJ(w)}
	case opcJALR:
		if f3 == 0 {
			return Inst{Op: OpJALR, Rd: rd, Rs1: rs1, Imm: immI(w)}
		}
	case opcBranch:
		ops := [8]Op{OpBEQ, OpBNE, 0, 0, OpBLT, OpBGE, OpBLTU, OpBGEU}
		if op := ops[f3]; op != OpInvalid {
			return Inst{Op: op, Rs1: rs1, Rs2: rs2, Imm: immB(w)}
		}
	case opcLoad:
		ops := [8]Op{OpLB, OpLH, OpLW, 0, OpLBU, OpLHU, 0, 0}
		if op := ops[f3]; op != OpInvalid {
			return Inst{Op: op, Rd: rd, Rs1: rs1, Imm: immI(w)}
		}
	case opcStore:
		ops := [8]Op{OpSB, OpSH, OpSW, 0, 0, 0, 0, 0}
		if op := ops[f3]; op != OpInvalid {
			return Inst{Op: op, Rs1: rs1, Rs2: rs2, Imm: immS(w)}
		}
	case opcOpImm:
		switch f3 {
		case 0:
			return Inst{Op: OpADDI, Rd: rd, Rs1: rs1, Imm: immI(w)}
		case 1:
			if f7 == 0 {
				return Inst{Op: OpSLLI, Rd: rd, Rs1: rs1, Imm: int32(rs2)}
			}
		case 2:
			return Inst{Op: OpSLTI, Rd: rd, Rs1: rs1, Imm: immI(w)}
		case 3:
			return Inst{Op: OpSLTIU, Rd: rd, Rs1: rs1, Imm: immI(w)}
		case 4:
			return Inst{Op: OpXORI, Rd: rd, Rs1: rs1, Imm: immI(w)}
		case 5:
			if f7 == 0 {
				return Inst{Op: OpSRLI, Rd: rd, Rs1: rs1, Imm: int32(rs2)}
			}
			if f7 == 0x20 {
				return Inst{Op: OpSRAI, Rd: rd, Rs1: rs1, Imm: int32(rs2)}
			}
		case 6:
			return Inst{Op: OpORI, Rd: rd, Rs1: rs1, Imm: immI(w)}
		case 7:
			return Inst{Op: OpANDI, Rd: rd, Rs1: rs1, Imm: immI(w)}
		}
	case opcOp:
		switch f7 {
		case 0:
			ops := [8]Op{OpADD, OpSLL, OpSLT, OpSLTU, OpXOR, OpSRL, OpOR, OpAND}
			return Inst{Op: ops[f3], Rd: rd, Rs1: rs1, Rs2: rs2}
		case 0x20:
			if f3 == 0 {
				return Inst{Op: OpSUB, Rd: rd, Rs1: rs1, Rs2: rs2}
			}
			if f3 == 5 {
				return Inst{Op: OpSRA, Rd: rd, Rs1: rs1, Rs2: rs2}
			}
		case 1: // M extension
			ops := [8]Op{OpMUL, OpMULH, OpMULHSU, OpMULHU, OpDIV, OpDIVU, OpREM, OpREMU}
			return Inst{Op: ops[f3], Rd: rd, Rs1: rs1, Rs2: rs2}
		}
	case opcMiscM:
		if f3 == 0 {
			return Inst{Op: OpFENCE, Rd: rd, Rs1: rs1, Imm: immI(w)}
		}
	case opcSystem:
		if f3 == 0 && rd == 0 && rs1 == 0 {
			switch w >> 20 {
			case 0:
				return Inst{Op: OpECALL}
			case 1:
				return Inst{Op: OpEBREAK}
			}
		}
	}
	return Inst{Op: OpInvalid}
}

// Encode produces the 32-bit word for inst. It panics on OpInvalid
// (programming error, same contract as the MIPS encoder).
func Encode(inst Inst) uint32 {
	rd := uint32(inst.Rd & 31)
	rs1 := uint32(inst.Rs1 & 31)
	rs2 := uint32(inst.Rs2 & 31)
	imm := uint32(inst.Imm)
	enc := func(opc, f3, f7 uint32) uint32 {
		return f7<<25 | rs2<<20 | rs1<<15 | f3<<12 | rd<<7 | opc
	}
	encI := func(opc, f3 uint32) uint32 {
		return imm<<20 | rs1<<15 | f3<<12 | rd<<7 | opc
	}
	encS := func(f3 uint32) uint32 {
		return imm>>5&0x7F<<25 | rs2<<20 | rs1<<15 | f3<<12 | imm&0x1F<<7 | opcStore
	}
	encB := func(f3 uint32) uint32 {
		return imm>>12&1<<31 | imm>>5&0x3F<<25 | rs2<<20 | rs1<<15 |
			f3<<12 | imm>>1&0xF<<8 | imm>>11&1<<7 | opcBranch
	}
	switch inst.Op {
	case OpLUI:
		return imm&0xFFFFF000 | rd<<7 | opcLUI
	case OpAUIPC:
		return imm&0xFFFFF000 | rd<<7 | opcAUIPC
	case OpJAL:
		return imm>>20&1<<31 | imm>>1&0x3FF<<21 | imm>>11&1<<20 |
			imm>>12&0xFF<<12 | rd<<7 | opcJAL
	case OpJALR:
		return encI(opcJALR, 0)
	case OpBEQ:
		return encB(0)
	case OpBNE:
		return encB(1)
	case OpBLT:
		return encB(4)
	case OpBGE:
		return encB(5)
	case OpBLTU:
		return encB(6)
	case OpBGEU:
		return encB(7)
	case OpLB:
		return encI(opcLoad, 0)
	case OpLH:
		return encI(opcLoad, 1)
	case OpLW:
		return encI(opcLoad, 2)
	case OpLBU:
		return encI(opcLoad, 4)
	case OpLHU:
		return encI(opcLoad, 5)
	case OpSB:
		return encS(0)
	case OpSH:
		return encS(1)
	case OpSW:
		return encS(2)
	case OpADDI:
		return encI(opcOpImm, 0)
	case OpSLTI:
		return encI(opcOpImm, 2)
	case OpSLTIU:
		return encI(opcOpImm, 3)
	case OpXORI:
		return encI(opcOpImm, 4)
	case OpORI:
		return encI(opcOpImm, 6)
	case OpANDI:
		return encI(opcOpImm, 7)
	case OpSLLI:
		return imm&0x1F<<20 | rs1<<15 | 1<<12 | rd<<7 | opcOpImm
	case OpSRLI:
		return imm&0x1F<<20 | rs1<<15 | 5<<12 | rd<<7 | opcOpImm
	case OpSRAI:
		return 0x20<<25 | imm&0x1F<<20 | rs1<<15 | 5<<12 | rd<<7 | opcOpImm
	case OpADD:
		return enc(opcOp, 0, 0)
	case OpSUB:
		return enc(opcOp, 0, 0x20)
	case OpSLL:
		return enc(opcOp, 1, 0)
	case OpSLT:
		return enc(opcOp, 2, 0)
	case OpSLTU:
		return enc(opcOp, 3, 0)
	case OpXOR:
		return enc(opcOp, 4, 0)
	case OpSRL:
		return enc(opcOp, 5, 0)
	case OpSRA:
		return enc(opcOp, 5, 0x20)
	case OpOR:
		return enc(opcOp, 6, 0)
	case OpAND:
		return enc(opcOp, 7, 0)
	case OpMUL:
		return enc(opcOp, 0, 1)
	case OpMULH:
		return enc(opcOp, 1, 1)
	case OpMULHSU:
		return enc(opcOp, 2, 1)
	case OpMULHU:
		return enc(opcOp, 3, 1)
	case OpDIV:
		return enc(opcOp, 4, 1)
	case OpDIVU:
		return enc(opcOp, 5, 1)
	case OpREM:
		return enc(opcOp, 6, 1)
	case OpREMU:
		return enc(opcOp, 7, 1)
	case OpFENCE:
		return encI(opcMiscM, 0)
	case OpECALL:
		return opcSystem
	case OpEBREAK:
		return 1<<20 | opcSystem
	}
	panic(fmt.Sprintf("riscv: cannot encode op %v", inst.Op))
}

// Disassemble renders the word at pc in the syntax the assembler backend
// accepts (branch and jal targets are absolute hex addresses).
func Disassemble(w uint32, pc uint32) string {
	inst := Decode(w)
	r := RegName
	switch inst.Op {
	case OpInvalid:
		return fmt.Sprintf(".word 0x%08x", w)
	case OpLUI, OpAUIPC:
		return fmt.Sprintf("%s %s, 0x%x", inst.Op, r(inst.Rd), uint32(inst.Imm)>>12)
	case OpJAL:
		return fmt.Sprintf("jal %s, 0x%08x", r(inst.Rd), pc+uint32(inst.Imm))
	case OpJALR:
		return fmt.Sprintf("jalr %s, %d(%s)", r(inst.Rd), inst.Imm, r(inst.Rs1))
	case OpBEQ, OpBNE, OpBLT, OpBGE, OpBLTU, OpBGEU:
		return fmt.Sprintf("%s %s, %s, 0x%08x", inst.Op, r(inst.Rs1), r(inst.Rs2), pc+uint32(inst.Imm))
	case OpLB, OpLH, OpLW, OpLBU, OpLHU:
		return fmt.Sprintf("%s %s, %d(%s)", inst.Op, r(inst.Rd), inst.Imm, r(inst.Rs1))
	case OpSB, OpSH, OpSW:
		return fmt.Sprintf("%s %s, %d(%s)", inst.Op, r(inst.Rs2), inst.Imm, r(inst.Rs1))
	case OpADDI, OpSLTI, OpSLTIU, OpXORI, OpORI, OpANDI,
		OpSLLI, OpSRLI, OpSRAI:
		return fmt.Sprintf("%s %s, %s, %d", inst.Op, r(inst.Rd), r(inst.Rs1), inst.Imm)
	case OpFENCE:
		return "fence"
	case OpECALL, OpEBREAK:
		return inst.Op.String()
	default: // R-type
		return fmt.Sprintf("%s %s, %s, %s", inst.Op, r(inst.Rd), r(inst.Rs1), r(inst.Rs2))
	}
}
