package riscv

import (
	"fmt"
	"strings"

	"ccrp/internal/isa"
)

// This file is the RV32 half of the two-pass assembler (isa.AsmBackend):
// instruction sizing, encoding, and the standard pseudo-instructions. The
// syntax is conventional RISC-V assembler syntax — bare ABI register
// names, "off(base)" memory operands, absolute branch targets.

// fitsInt12 reports whether v, viewed as signed, fits in 12 bits.
func fitsInt12(v uint32) bool {
	s := int32(v)
	return s >= -2048 && s <= 2047
}

// InstSize returns the byte size of an instruction or pseudo-instruction
// during pass 1. As on MIPS, li requires a constant operand so its size
// is known before labels resolve.
func (Backend) InstSize(op string, args []string, eval isa.Evaluator) (int, error) {
	switch op {
	case "li":
		if len(args) != 2 {
			return 0, fmt.Errorf("li needs register, constant")
		}
		v, err := eval(args[1])
		if err != nil {
			return 0, fmt.Errorf("li: %v (use la for symbols)", err)
		}
		if fitsInt12(v) {
			return 4, nil
		}
		return 8, nil
	case "la":
		return 8, nil
	}
	return 4, nil
}

// EncodeInst translates one statement at address addr into machine words
// during pass 2.
func (Backend) EncodeInst(op string, args []string, addr uint32, eval isa.Evaluator) ([]isa.Word, error) {
	e := rvEncoder{op: op, args: args, addr: addr, eval: eval}
	return e.encode()
}

type rvEncoder struct {
	op   string
	args []string
	addr uint32
	eval isa.Evaluator
}

func (e *rvEncoder) errf(format string, args ...any) error {
	return fmt.Errorf("%s: %s", e.op, fmt.Sprintf(format, args...))
}

func (e *rvEncoder) nargs(n int) error {
	if len(e.args) != n {
		return e.errf("expected %d operands, got %d", n, len(e.args))
	}
	return nil
}

func (e *rvEncoder) reg(i int) (uint8, error) { return parseRVReg(e.args[i]) }

func (e *rvEncoder) expr(i int) (uint32, error) {
	v, err := e.eval(e.args[i])
	if err != nil {
		return 0, e.errf("%v", err)
	}
	return v, nil
}

// mem parses args[i] as "offset(base)".
func (e *rvEncoder) mem(i int) (int32, uint8, error) {
	s := strings.TrimSpace(e.args[i])
	open := strings.LastIndexByte(s, '(')
	if open < 0 || !strings.HasSuffix(s, ")") {
		return 0, 0, e.errf("expected offset(base), got %q", s)
	}
	base, err := parseRVReg(s[open+1 : len(s)-1])
	if err != nil {
		return 0, 0, e.errf("%v", err)
	}
	offStr := strings.TrimSpace(s[:open])
	var off uint32
	if offStr != "" {
		off, err = e.eval(offStr)
		if err != nil {
			return 0, 0, e.errf("%v", err)
		}
	}
	if !fitsInt12(off) {
		return 0, 0, e.errf("offset %d out of 12-bit range", int32(off))
	}
	return int32(off), base, nil
}

// branchImm computes the PC-relative immediate to target for an
// instruction at e.addr, checking range and 2-byte alignment.
func (e *rvEncoder) branchImm(target uint32, lo, hi int32) (int32, error) {
	diff := int32(target - e.addr)
	if diff&1 != 0 {
		return 0, e.errf("target %#x not halfword aligned", target)
	}
	if diff < lo || diff > hi {
		return 0, e.errf("target %#x out of range (offset %d)", target, diff)
	}
	return diff, nil
}

func rvWord(i Inst) isa.Word { return isa.Word(Encode(i)) }

var rvR3Op = map[string]Op{
	"add": OpADD, "sub": OpSUB, "sll": OpSLL, "slt": OpSLT,
	"sltu": OpSLTU, "xor": OpXOR, "srl": OpSRL, "sra": OpSRA,
	"or": OpOR, "and": OpAND,
	"mul": OpMUL, "mulh": OpMULH, "mulhsu": OpMULHSU, "mulhu": OpMULHU,
	"div": OpDIV, "divu": OpDIVU, "rem": OpREM, "remu": OpREMU,
}

var rvImmOp = map[string]Op{
	"addi": OpADDI, "slti": OpSLTI, "sltiu": OpSLTIU,
	"xori": OpXORI, "ori": OpORI, "andi": OpANDI,
}

var rvShiftOp = map[string]Op{
	"slli": OpSLLI, "srli": OpSRLI, "srai": OpSRAI,
}

var rvLoadOp = map[string]Op{
	"lb": OpLB, "lh": OpLH, "lw": OpLW, "lbu": OpLBU, "lhu": OpLHU,
}

var rvStoreOp = map[string]Op{
	"sb": OpSB, "sh": OpSH, "sw": OpSW,
}

var rvBranchOp = map[string]Op{
	"beq": OpBEQ, "bne": OpBNE, "blt": OpBLT,
	"bge": OpBGE, "bltu": OpBLTU, "bgeu": OpBGEU,
}

func (e *rvEncoder) encode() ([]isa.Word, error) {
	op := e.op

	if ops, ok := rvR3Op[op]; ok { // op rd, rs1, rs2
		if err := e.nargs(3); err != nil {
			return nil, err
		}
		rd, err := e.reg(0)
		if err != nil {
			return nil, err
		}
		rs1, err := e.reg(1)
		if err != nil {
			return nil, err
		}
		rs2, err := e.reg(2)
		if err != nil {
			return nil, err
		}
		return []isa.Word{rvWord(Inst{Op: ops, Rd: rd, Rs1: rs1, Rs2: rs2})}, nil
	}
	if ops, ok := rvImmOp[op]; ok { // op rd, rs1, imm
		if err := e.nargs(3); err != nil {
			return nil, err
		}
		rd, err := e.reg(0)
		if err != nil {
			return nil, err
		}
		rs1, err := e.reg(1)
		if err != nil {
			return nil, err
		}
		v, err := e.expr(2)
		if err != nil {
			return nil, err
		}
		if !fitsInt12(v) {
			return nil, e.errf("immediate %d out of 12-bit range", int32(v))
		}
		return []isa.Word{rvWord(Inst{Op: ops, Rd: rd, Rs1: rs1, Imm: int32(v)})}, nil
	}
	if ops, ok := rvShiftOp[op]; ok { // op rd, rs1, shamt
		if err := e.nargs(3); err != nil {
			return nil, err
		}
		rd, err := e.reg(0)
		if err != nil {
			return nil, err
		}
		rs1, err := e.reg(1)
		if err != nil {
			return nil, err
		}
		sh, err := e.expr(2)
		if err != nil {
			return nil, err
		}
		if sh > 31 {
			return nil, e.errf("shift amount %d out of range", sh)
		}
		return []isa.Word{rvWord(Inst{Op: ops, Rd: rd, Rs1: rs1, Imm: int32(sh)})}, nil
	}
	if ops, ok := rvLoadOp[op]; ok { // op rd, off(base)
		if err := e.nargs(2); err != nil {
			return nil, err
		}
		rd, err := e.reg(0)
		if err != nil {
			return nil, err
		}
		off, base, err := e.mem(1)
		if err != nil {
			return nil, err
		}
		return []isa.Word{rvWord(Inst{Op: ops, Rd: rd, Rs1: base, Imm: off})}, nil
	}
	if ops, ok := rvStoreOp[op]; ok { // op rs2, off(base)
		if err := e.nargs(2); err != nil {
			return nil, err
		}
		rs2, err := e.reg(0)
		if err != nil {
			return nil, err
		}
		off, base, err := e.mem(1)
		if err != nil {
			return nil, err
		}
		return []isa.Word{rvWord(Inst{Op: ops, Rs2: rs2, Rs1: base, Imm: off})}, nil
	}
	if ops, ok := rvBranchOp[op]; ok { // op rs1, rs2, target
		if err := e.nargs(3); err != nil {
			return nil, err
		}
		rs1, err := e.reg(0)
		if err != nil {
			return nil, err
		}
		rs2, err := e.reg(1)
		if err != nil {
			return nil, err
		}
		tgt, err := e.expr(2)
		if err != nil {
			return nil, err
		}
		imm, err := e.branchImm(tgt, -4096, 4094)
		if err != nil {
			return nil, err
		}
		return []isa.Word{rvWord(Inst{Op: ops, Rs1: rs1, Rs2: rs2, Imm: imm})}, nil
	}

	switch op {
	case "lui", "auipc":
		if err := e.nargs(2); err != nil {
			return nil, err
		}
		rd, err := e.reg(0)
		if err != nil {
			return nil, err
		}
		v, err := e.expr(1)
		if err != nil {
			return nil, err
		}
		if v > 0xFFFFF {
			return nil, e.errf("immediate %#x out of 20-bit range", v)
		}
		o := OpLUI
		if op == "auipc" {
			o = OpAUIPC
		}
		return []isa.Word{rvWord(Inst{Op: o, Rd: rd, Imm: int32(v << 12)})}, nil
	case "jal":
		// jal target | jal rd, target
		rd := RegRA
		ti := 0
		var err error
		switch len(e.args) {
		case 1:
		case 2:
			if rd, err = e.reg(0); err != nil {
				return nil, err
			}
			ti = 1
		default:
			return nil, e.errf("expected 1 or 2 operands")
		}
		tgt, err := e.expr(ti)
		if err != nil {
			return nil, err
		}
		imm, err := e.branchImm(tgt, -1<<20, 1<<20-2)
		if err != nil {
			return nil, err
		}
		return []isa.Word{rvWord(Inst{Op: OpJAL, Rd: rd, Imm: imm})}, nil
	case "jalr":
		// jalr rs1 | jalr rd, off(rs1)
		switch len(e.args) {
		case 1:
			rs1, err := e.reg(0)
			if err != nil {
				return nil, err
			}
			return []isa.Word{rvWord(Inst{Op: OpJALR, Rd: RegRA, Rs1: rs1})}, nil
		case 2:
			rd, err := e.reg(0)
			if err != nil {
				return nil, err
			}
			off, base, err := e.mem(1)
			if err != nil {
				return nil, err
			}
			return []isa.Word{rvWord(Inst{Op: OpJALR, Rd: rd, Rs1: base, Imm: off})}, nil
		}
		return nil, e.errf("expected 1 or 2 operands")
	case "ecall", "ebreak", "fence", "nop", "ret":
		if err := e.nargs(0); err != nil {
			return nil, err
		}
		switch op {
		case "ecall":
			return []isa.Word{rvWord(Inst{Op: OpECALL})}, nil
		case "ebreak":
			return []isa.Word{rvWord(Inst{Op: OpEBREAK})}, nil
		case "fence":
			return []isa.Word{rvWord(Inst{Op: OpFENCE})}, nil
		case "nop":
			return []isa.Word{rvWord(Inst{Op: OpADDI})}, nil
		default: // ret
			return []isa.Word{rvWord(Inst{Op: OpJALR, Rs1: RegRA})}, nil
		}
	}
	return e.encodePseudo()
}

// encodePseudo handles the standard multi-word and aliasing pseudos.
func (e *rvEncoder) encodePseudo() ([]isa.Word, error) {
	switch e.op {
	case "li":
		if err := e.nargs(2); err != nil {
			return nil, err
		}
		rd, err := e.reg(0)
		if err != nil {
			return nil, err
		}
		v, err := e.expr(1)
		if err != nil {
			return nil, err
		}
		return liWords(rd, v), nil
	case "la":
		if err := e.nargs(2); err != nil {
			return nil, err
		}
		rd, err := e.reg(0)
		if err != nil {
			return nil, err
		}
		v, err := e.expr(1)
		if err != nil {
			return nil, err
		}
		// Always two words so the size is label-independent.
		hi, lo := splitImm(v)
		return []isa.Word{
			rvWord(Inst{Op: OpLUI, Rd: rd, Imm: int32(hi << 12)}),
			rvWord(Inst{Op: OpADDI, Rd: rd, Rs1: rd, Imm: lo}),
		}, nil
	case "mv":
		if err := e.nargs(2); err != nil {
			return nil, err
		}
		rd, err := e.reg(0)
		if err != nil {
			return nil, err
		}
		rs, err := e.reg(1)
		if err != nil {
			return nil, err
		}
		return []isa.Word{rvWord(Inst{Op: OpADDI, Rd: rd, Rs1: rs})}, nil
	case "neg":
		if err := e.nargs(2); err != nil {
			return nil, err
		}
		rd, err := e.reg(0)
		if err != nil {
			return nil, err
		}
		rs, err := e.reg(1)
		if err != nil {
			return nil, err
		}
		return []isa.Word{rvWord(Inst{Op: OpSUB, Rd: rd, Rs2: rs})}, nil
	case "not":
		if err := e.nargs(2); err != nil {
			return nil, err
		}
		rd, err := e.reg(0)
		if err != nil {
			return nil, err
		}
		rs, err := e.reg(1)
		if err != nil {
			return nil, err
		}
		return []isa.Word{rvWord(Inst{Op: OpXORI, Rd: rd, Rs1: rs, Imm: -1})}, nil
	case "seqz":
		if err := e.nargs(2); err != nil {
			return nil, err
		}
		rd, err := e.reg(0)
		if err != nil {
			return nil, err
		}
		rs, err := e.reg(1)
		if err != nil {
			return nil, err
		}
		return []isa.Word{rvWord(Inst{Op: OpSLTIU, Rd: rd, Rs1: rs, Imm: 1})}, nil
	case "snez":
		if err := e.nargs(2); err != nil {
			return nil, err
		}
		rd, err := e.reg(0)
		if err != nil {
			return nil, err
		}
		rs, err := e.reg(1)
		if err != nil {
			return nil, err
		}
		return []isa.Word{rvWord(Inst{Op: OpSLTU, Rd: rd, Rs2: rs})}, nil
	case "j", "call":
		if err := e.nargs(1); err != nil {
			return nil, err
		}
		tgt, err := e.expr(0)
		if err != nil {
			return nil, err
		}
		imm, err := e.branchImm(tgt, -1<<20, 1<<20-2)
		if err != nil {
			return nil, err
		}
		rd := RegZero
		if e.op == "call" {
			rd = RegRA
		}
		return []isa.Word{rvWord(Inst{Op: OpJAL, Rd: rd, Imm: imm})}, nil
	case "jr":
		if err := e.nargs(1); err != nil {
			return nil, err
		}
		rs, err := e.reg(0)
		if err != nil {
			return nil, err
		}
		return []isa.Word{rvWord(Inst{Op: OpJALR, Rs1: rs})}, nil
	case "beqz", "bnez", "bltz", "bgez", "blez", "bgtz":
		if err := e.nargs(2); err != nil {
			return nil, err
		}
		rs, err := e.reg(0)
		if err != nil {
			return nil, err
		}
		tgt, err := e.expr(1)
		if err != nil {
			return nil, err
		}
		imm, err := e.branchImm(tgt, -4096, 4094)
		if err != nil {
			return nil, err
		}
		var inst Inst
		switch e.op {
		case "beqz":
			inst = Inst{Op: OpBEQ, Rs1: rs, Imm: imm}
		case "bnez":
			inst = Inst{Op: OpBNE, Rs1: rs, Imm: imm}
		case "bltz":
			inst = Inst{Op: OpBLT, Rs1: rs, Imm: imm}
		case "bgez":
			inst = Inst{Op: OpBGE, Rs1: rs, Imm: imm}
		case "blez": // rs <= 0  <=>  0 >= rs  <=>  bge x0, rs
			inst = Inst{Op: OpBGE, Rs2: rs, Imm: imm}
		default: // bgtz: rs > 0  <=>  0 < rs  <=>  blt x0, rs
			inst = Inst{Op: OpBLT, Rs2: rs, Imm: imm}
		}
		return []isa.Word{rvWord(inst)}, nil
	}
	return nil, fmt.Errorf("unknown instruction %q", e.op)
}

// splitImm splits v into a hi20/lo12 pair such that
// (hi<<12) + signext(lo) == v.
func splitImm(v uint32) (hi uint32, lo int32) {
	hi = (v + 0x800) >> 12 & 0xFFFFF
	lo = int32(v<<20) >> 20
	return hi, lo
}

// liWords materialises constant v into rd.
func liWords(rd uint8, v uint32) []isa.Word {
	if fitsInt12(v) {
		return []isa.Word{rvWord(Inst{Op: OpADDI, Rd: rd, Imm: int32(v)})}
	}
	hi, lo := splitImm(v)
	words := []isa.Word{rvWord(Inst{Op: OpLUI, Rd: rd, Imm: int32(hi << 12)})}
	return append(words, rvWord(Inst{Op: OpADDI, Rd: rd, Rs1: rd, Imm: lo}))
}

// parseRVReg parses a bare register operand ("a0", "x5", "fp").
func parseRVReg(s string) (uint8, error) {
	s = strings.TrimSpace(s)
	r, ok := RegNumber(s)
	if !ok {
		return 0, fmt.Errorf("unknown register %q", s)
	}
	return r, nil
}
