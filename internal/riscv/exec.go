package riscv

import (
	"ccrp/internal/asm"
	"ccrp/internal/isa"
)

// Timing model: single-issue in-order core, one instruction per cycle,
// plus a one-cycle load-use interlock and fixed multiply/divide
// latencies in the same spirit as the R2000 model in internal/mips.
const (
	mulStalls = 3
	divStalls = 34
)

// NewExecutor implements isa.ExecBackend.
func (Backend) NewExecutor() isa.Executor { return &executor{lastLoad: -1} }

type executor struct {
	lastLoad int // rd of the previous instruction if it was a load, else -1
}

// Reset implements isa.Executor.
func (x *executor) Reset(c isa.CPU) {
	x.lastLoad = -1
	c.SetReg(RegSP, asm.StackTop)
	c.SetReg(RegGP, asm.DataBase+0x8000)
}

// usesReg reports whether inst reads register r (for the load-use
// interlock).
func usesReg(inst Inst, r uint8) bool {
	if r == 0 {
		return false
	}
	switch inst.Op {
	case OpLUI, OpAUIPC, OpJAL, OpFENCE, OpECALL, OpEBREAK:
		return false
	case OpJALR, OpLB, OpLH, OpLW, OpLBU, OpLHU,
		OpADDI, OpSLTI, OpSLTIU, OpXORI, OpORI, OpANDI,
		OpSLLI, OpSRLI, OpSRAI:
		return inst.Rs1 == r
	default:
		return inst.Rs1 == r || inst.Rs2 == r
	}
}

// Step implements isa.Executor: fetch, decode, execute one RV32I+M
// instruction. RISC-V has no delay slot, so the PC pair advances in
// lockstep (NPC = PC + 4 except across taken transfers).
func (x *executor) Step(c isa.CPU) error {
	pc := c.PC()
	w, err := c.FetchWord(pc)
	if err != nil {
		return err
	}
	inst := Decode(uint32(w))
	if inst.Op == OpInvalid {
		return c.Faultf(isa.ErrInvalidOp, "word %#08x", uint32(w))
	}
	c.CountClass(inst.Op.Class())

	if x.lastLoad >= 0 && usesReg(inst, uint8(x.lastLoad)) {
		c.AddStalls(1)
	}
	x.lastLoad = -1

	rs1 := c.Reg(inst.Rs1)
	rs2 := c.Reg(inst.Rs2)
	next := pc + 4

	switch inst.Op {
	case OpLUI:
		c.SetReg(inst.Rd, uint32(inst.Imm))
	case OpAUIPC:
		c.SetReg(inst.Rd, pc+uint32(inst.Imm))
	case OpJAL:
		c.SetReg(inst.Rd, pc+4)
		next = pc + uint32(inst.Imm)
	case OpJALR:
		t := (rs1 + uint32(inst.Imm)) &^ 1
		c.SetReg(inst.Rd, pc+4)
		next = t
	case OpBEQ:
		if rs1 == rs2 {
			next = pc + uint32(inst.Imm)
		}
	case OpBNE:
		if rs1 != rs2 {
			next = pc + uint32(inst.Imm)
		}
	case OpBLT:
		if int32(rs1) < int32(rs2) {
			next = pc + uint32(inst.Imm)
		}
	case OpBGE:
		if int32(rs1) >= int32(rs2) {
			next = pc + uint32(inst.Imm)
		}
	case OpBLTU:
		if rs1 < rs2 {
			next = pc + uint32(inst.Imm)
		}
	case OpBGEU:
		if rs1 >= rs2 {
			next = pc + uint32(inst.Imm)
		}
	case OpLB, OpLH, OpLW, OpLBU, OpLHU:
		addr := rs1 + uint32(inst.Imm)
		c.NoteLoad(addr)
		var v uint32
		switch inst.Op {
		case OpLB:
			b, err := c.LoadByte(addr)
			if err != nil {
				return err
			}
			v = uint32(int32(int8(b)))
		case OpLBU:
			b, err := c.LoadByte(addr)
			if err != nil {
				return err
			}
			v = uint32(b)
		case OpLH:
			h, err := c.LoadHalf(addr)
			if err != nil {
				return err
			}
			v = uint32(int32(int16(h)))
		case OpLHU:
			h, err := c.LoadHalf(addr)
			if err != nil {
				return err
			}
			v = uint32(h)
		default: // OpLW
			v, err = c.LoadWord(addr)
			if err != nil {
				return err
			}
		}
		c.SetReg(inst.Rd, v)
		if inst.Rd != 0 {
			x.lastLoad = int(inst.Rd)
		}
	case OpSB, OpSH, OpSW:
		addr := rs1 + uint32(inst.Imm)
		c.NoteStore(addr)
		switch inst.Op {
		case OpSB:
			err = c.StoreByte(addr, uint8(rs2))
		case OpSH:
			err = c.StoreHalf(addr, uint16(rs2))
		default:
			err = c.StoreWord(addr, rs2)
		}
		if err != nil {
			return err
		}
	case OpADDI:
		c.SetReg(inst.Rd, rs1+uint32(inst.Imm))
	case OpSLTI:
		c.SetReg(inst.Rd, b2u(int32(rs1) < inst.Imm))
	case OpSLTIU:
		c.SetReg(inst.Rd, b2u(rs1 < uint32(inst.Imm)))
	case OpXORI:
		c.SetReg(inst.Rd, rs1^uint32(inst.Imm))
	case OpORI:
		c.SetReg(inst.Rd, rs1|uint32(inst.Imm))
	case OpANDI:
		c.SetReg(inst.Rd, rs1&uint32(inst.Imm))
	case OpSLLI:
		c.SetReg(inst.Rd, rs1<<uint32(inst.Imm&31))
	case OpSRLI:
		c.SetReg(inst.Rd, rs1>>uint32(inst.Imm&31))
	case OpSRAI:
		c.SetReg(inst.Rd, uint32(int32(rs1)>>uint32(inst.Imm&31)))
	case OpADD:
		c.SetReg(inst.Rd, rs1+rs2)
	case OpSUB:
		c.SetReg(inst.Rd, rs1-rs2)
	case OpSLL:
		c.SetReg(inst.Rd, rs1<<(rs2&31))
	case OpSLT:
		c.SetReg(inst.Rd, b2u(int32(rs1) < int32(rs2)))
	case OpSLTU:
		c.SetReg(inst.Rd, b2u(rs1 < rs2))
	case OpXOR:
		c.SetReg(inst.Rd, rs1^rs2)
	case OpSRL:
		c.SetReg(inst.Rd, rs1>>(rs2&31))
	case OpSRA:
		c.SetReg(inst.Rd, uint32(int32(rs1)>>(rs2&31)))
	case OpOR:
		c.SetReg(inst.Rd, rs1|rs2)
	case OpAND:
		c.SetReg(inst.Rd, rs1&rs2)
	case OpMUL:
		c.AddStalls(mulStalls)
		c.SetReg(inst.Rd, rs1*rs2)
	case OpMULH:
		c.AddStalls(mulStalls)
		c.SetReg(inst.Rd, uint32(int64(int32(rs1))*int64(int32(rs2))>>32))
	case OpMULHSU:
		c.AddStalls(mulStalls)
		c.SetReg(inst.Rd, uint32(int64(int32(rs1))*int64(rs2)>>32))
	case OpMULHU:
		c.AddStalls(mulStalls)
		c.SetReg(inst.Rd, uint32(uint64(rs1)*uint64(rs2)>>32))
	case OpDIV:
		c.AddStalls(divStalls)
		switch {
		case rs2 == 0:
			c.SetReg(inst.Rd, 0xFFFFFFFF)
		case rs1 == 0x80000000 && rs2 == 0xFFFFFFFF:
			c.SetReg(inst.Rd, 0x80000000)
		default:
			c.SetReg(inst.Rd, uint32(int32(rs1)/int32(rs2)))
		}
	case OpDIVU:
		c.AddStalls(divStalls)
		if rs2 == 0 {
			c.SetReg(inst.Rd, 0xFFFFFFFF)
		} else {
			c.SetReg(inst.Rd, rs1/rs2)
		}
	case OpREM:
		c.AddStalls(divStalls)
		switch {
		case rs2 == 0:
			c.SetReg(inst.Rd, rs1)
		case rs1 == 0x80000000 && rs2 == 0xFFFFFFFF:
			c.SetReg(inst.Rd, 0)
		default:
			c.SetReg(inst.Rd, uint32(int32(rs1)%int32(rs2)))
		}
	case OpREMU:
		c.AddStalls(divStalls)
		if rs2 == 0 {
			c.SetReg(inst.Rd, rs1)
		} else {
			c.SetReg(inst.Rd, rs1%rs2)
		}
	case OpFENCE:
		// No memory system to order.
	case OpECALL:
		res, hasRes, err := c.Syscall(c.Reg(RegA7), c.Reg(RegA0))
		if err != nil {
			return err
		}
		if hasRes {
			c.SetReg(RegA0, res)
		}
	case OpEBREAK:
		return c.Faultf(isa.ErrInvalidOp, "ebreak")
	}

	c.SetPC(next)
	c.SetNPC(next + 4)
	return nil
}

func b2u(b bool) uint32 {
	if b {
		return 1
	}
	return 0
}
