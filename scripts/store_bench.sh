#!/bin/sh
# Persistence + batching benchmark -> BENCH_<label>.json.
#
# Measures the two things PR 7 claims to buy:
#
#   1. Warm vs cold boot: wall time from daemon exec to a served
#      compress response, once against an empty store (train on demand)
#      and once rebooted on the populated store (warm start, zero
#      retrains — asserted via /metrics).
#   2. Batch vs single round trips: ccrp-load -mix roundtrip=1 at equal
#      block counts, single-request endpoints vs -batch N, both against
#      the warm daemon after an identical warmup pass. ccrp-load reports
#      batch latencies per block, so the two p95s are directly
#      comparable — and the batch p95 must win, or this script fails.
#
# Usage: scripts/store_bench.sh [label] [blocks] [batch]
set -eu
# pipefail surfaces failures on the left side of pipes; it is not in
# POSIX sh everywhere, so probe for it instead of assuming bash.
(set -o pipefail 2>/dev/null) && set -o pipefail


cd "$(dirname "$0")/.."

label=${1:-PR7}
blocks=${2:-48}
batch=${3:-8}

port=${CCRPD_PORT:-8645}
base="http://127.0.0.1:${port}"
out="BENCH_${label}.json"
work=$(mktemp -d)
store="$work/store"
wl=eightq

fail() {
	echo "store_bench: FAILED: $1" >&2
	[ -f "$work/ccrpd.log" ] && sed 's/^/ccrpd: /' "$work/ccrpd.log" >&2
	exit 1
}

cleanup() {
	[ -n "${pid:-}" ] && kill "$pid" 2>/dev/null || true
	rm -rf "$work"
}
trap cleanup EXIT

# now: monotonic-enough wall clock in milliseconds.
now() {
	python3 -c 'import time; print(int(time.time() * 1000))'
}

wait_healthy() {
	i=0
	until curl -fsS "$base/healthz" >/dev/null 2>&1; do
		i=$((i + 1))
		[ "$i" -ge 100 ] && fail "daemon did not become healthy"
		kill -0 "$pid" 2>/dev/null || fail "daemon exited during startup"
		sleep 0.1
	done
}

drain() {
	kill -TERM "$pid"
	i=0
	while kill -0 "$pid" 2>/dev/null; do
		i=$((i + 1))
		[ "$i" -ge 100 ] && fail "daemon did not exit after SIGTERM"
		sleep 0.1
	done
	wait "$pid" || true
	pid=
}

echo "== building"
go build -o "$work/ccrpd" ./cmd/ccrpd
go build -o "$work/ccrp-load" ./cmd/ccrp-load

echo "== cold boot: empty store, train + compress"
t0=$(now)
"$work/ccrpd" -addr "127.0.0.1:${port}" -store "$store" >"$work/ccrpd.log" 2>&1 &
pid=$!
wait_healthy
curl -fsS -X POST "$base/v1/coders" -d '{"kind":"preselected"}' \
	>"$work/coder.json" || fail "train (cold)"
coder=$(python3 -c 'import json,sys; print(json.load(open(sys.argv[1]))["id"])' "$work/coder.json")
curl -fsS -X POST "$base/v1/compress" \
	-d "{\"coder_id\":\"$coder\",\"workload\":\"$wl\"}" >/dev/null || fail "compress (cold)"
cold_ms=$(($(now) - t0))
drain

echo "== warm boot: same store, compress without retraining"
t0=$(now)
"$work/ccrpd" -addr "127.0.0.1:${port}" -store "$store" >"$work/ccrpd.log" 2>&1 &
pid=$!
wait_healthy
curl -fsS -X POST "$base/v1/compress" \
	-d "{\"coder_id\":\"$coder\",\"workload\":\"$wl\"}" >/dev/null || fail "compress (warm)"
warm_ms=$(($(now) - t0))
curl -fsS "$base/metrics" >"$work/metrics.prom" || fail "metrics scrape"
awk '$1 == "ccrpd_coder_builds_total" && $2 != "0" { exit 1 }' "$work/metrics.prom" \
	|| fail "warm boot retrained a coder"

echo "== warmup pass over every workload (fills the ROM cache for both runs)"
"$work/ccrp-load" -url "$base" -clients 2 -requests "$blocks" \
	-mix roundtrip=1 -o /dev/null 2>/dev/null || fail "warmup pass"

echo "== single-request round trips ($blocks blocks)"
"$work/ccrp-load" -url "$base" -clients 2 -requests "$blocks" \
	-mix roundtrip=1 -o "$work/single.json" || fail "single-request load"

echo "== batched round trips ($blocks blocks, -batch $batch)"
"$work/ccrp-load" -url "$base" -clients 2 -requests "$blocks" -batch "$batch" \
	-mix roundtrip=1 -o "$work/batch.json" || fail "batched load"

drain

echo "== composing $out"
python3 - "$work/single.json" "$work/batch.json" "$out" \
	"$cold_ms" "$warm_ms" "$blocks" "$batch" <<'EOF'
import json, sys

single = json.load(open(sys.argv[1]))
batch = json.load(open(sys.argv[2]))
rep = {
    "schema": 1,
    "tool": "store_bench",
    "version": single["version"],
    "boot": {
        "cold_to_first_compress_ms": int(sys.argv[4]),
        "warm_to_first_compress_ms": int(sys.argv[5]),
    },
    "roundtrip": {
        "blocks": int(sys.argv[6]),
        "batch_size": int(sys.argv[7]),
        "single": single["overall"],
        "batch": batch["overall"],
        "single_throughput_rps": single["throughput_rps"],
        "batch_throughput_rps": batch["throughput_rps"],
    },
    "host": single["host"],
}
sp95, bp95 = single["overall"]["p95_ms"], batch["overall"]["p95_ms"]
rep["roundtrip"]["p95_speedup"] = round(sp95 / bp95, 2) if bp95 else None
json.dump(rep, open(sys.argv[3], "w"), indent=2)
open(sys.argv[3], "a").write("\n")
print(f"boot: cold {sys.argv[4]} ms, warm {sys.argv[5]} ms")
print(f"roundtrip p95: single {sp95:.1f} ms, batch {bp95:.1f} ms per block")
assert bp95 < sp95, f"batch p95 {bp95} ms does not beat single p95 {sp95} ms"
EOF

echo "== $out written"
