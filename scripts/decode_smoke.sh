#!/bin/sh
# Decode-equivalence smoke: packs a corpus program into a CROM image,
# decompresses it with both software decode paths (canonical bit-serial
# and table-driven fast), and byte-compares the recovered text. A fast
# path that diverges from the canonical decoder fails the build here,
# before any benchmark can report a meaningless speedup. Finishes with
# a short decode benchmark so a severe fast-path regression is visible
# in CI logs.
#
# Usage: sh scripts/decode_smoke.sh [workload]   (default: espresso)
set -eu

cd "$(dirname "$0")/.."

WL=${1:-espresso}
TMP=$(mktemp -d)
trap 'rm -rf "$TMP"' EXIT

echo "== ccpack -workload $WL"
go run ./cmd/ccpack -workload "$WL" -o "$TMP/prog.rom"

echo "== ccdis -rom -decoder fast vs canonical"
go run ./cmd/ccdis -rom -decoder fast -raw "$TMP/fast.bin" "$TMP/prog.rom" > "$TMP/fast.dis"
go run ./cmd/ccdis -rom -decoder canonical -raw "$TMP/canon.bin" "$TMP/prog.rom" > "$TMP/canon.dis"
cmp "$TMP/fast.bin" "$TMP/canon.bin"
cmp "$TMP/fast.dis" "$TMP/canon.dis"
echo "decoded text byte-identical ($(wc -c < "$TMP/fast.bin") bytes)"

echo "== go test -bench=Decode (internal/huffman)"
go test -run='^$' -bench='BenchmarkDecode(Canonical|Fast)$' -benchtime=200ms ./internal/huffman

echo "decode_smoke: OK"
