#!/bin/sh
# Decode-equivalence smoke: packs a corpus program into a CROM image,
# decompresses it with every software decode path (canonical bit-serial,
# table-driven fast, and the multi-symbol kernel), and byte-compares the
# recovered text. A fast path that diverges from the canonical decoder
# fails the build here, before any benchmark can report a meaningless
# speedup. Finishes with a short decode benchmark plus the
# multi-beats-fast throughput gate, so a severe decode-kernel
# regression is visible (and fatal) in CI.
#
# Usage: sh scripts/decode_smoke.sh [workload]   (default: espresso)
set -eu
# pipefail surfaces failures on the left side of pipes; it is not in
# POSIX sh everywhere, so probe for it instead of assuming bash.
(set -o pipefail 2>/dev/null) && set -o pipefail


cd "$(dirname "$0")/.."

WL=${1:-espresso}
TMP=$(mktemp -d)
trap 'rm -rf "$TMP"' EXIT

echo "== ccpack -workload $WL"
go run ./cmd/ccpack -workload "$WL" -o "$TMP/prog.rom"

echo "== ccdis -rom -decoder multi vs fast vs canonical"
go run ./cmd/ccdis -rom -decoder multi -raw "$TMP/multi.bin" "$TMP/prog.rom" > "$TMP/multi.dis"
go run ./cmd/ccdis -rom -decoder fast -raw "$TMP/fast.bin" "$TMP/prog.rom" > "$TMP/fast.dis"
go run ./cmd/ccdis -rom -decoder canonical -raw "$TMP/canon.bin" "$TMP/prog.rom" > "$TMP/canon.dis"
cmp "$TMP/multi.bin" "$TMP/canon.bin"
cmp "$TMP/fast.bin" "$TMP/canon.bin"
cmp "$TMP/multi.dis" "$TMP/canon.dis"
cmp "$TMP/fast.dis" "$TMP/canon.dis"
echo "decoded text byte-identical ($(wc -c < "$TMP/multi.bin") bytes)"

echo "== go test -bench=Decode (internal/huffman)"
go test -run='^$' -bench='BenchmarkDecode(Canonical|Fast|Multi)$' -benchtime=200ms ./internal/huffman

echo "== multi-beats-fast throughput gate (espresso)"
go test -run='^TestDecodeBenchMultiBeatsFast$' -count=1 ./internal/experiments

echo "decode_smoke: OK"
