#!/bin/sh
# Benchmark trajectory recorder: runs the full paper point sweep twice —
# sequentially (-j 1) and with the default worker pool — from a cold
# artifact cache each time, cross-checks that both renderings are
# byte-identical, and writes BENCH_<label>.json with wall times, the
# speedup, host metadata (go version, GOMAXPROCS, CPU model) so files
# from different machines can be compared honestly, and every datapoint
# (compression ratios, cycle counts, relative performance). Diff these
# files across PRs to catch both performance and correctness regressions.
#
# Usage: scripts/bench.sh [label] [extra ccrp-bench flags...]
set -eu
# pipefail surfaces failures on the left side of pipes; it is not in
# POSIX sh everywhere, so probe for it instead of assuming bash.
(set -o pipefail 2>/dev/null) && set -o pipefail


cd "$(dirname "$0")/.."

label=${1:-PR2}
[ $# -gt 0 ] && shift

out="BENCH_${label}.json"
echo "== recording benchmark trajectory -> $out"
go run ./cmd/ccrp-bench -trajectory "$out" -label "$label" "$@"
echo "== $out written"
