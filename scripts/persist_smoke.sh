#!/bin/sh
# Restart-survival gate for the disk-backed artifact store: boot ccrpd
# with -store, train two coders (preselected + codepack) and compress a
# workload, SIGTERM-drain the daemon, boot a second daemon on the same
# store, and assert — via /metrics — that the second life retrained
# nothing (ccrpd_coder_builds_total stays 0), warm-started every coder,
# and serves byte-identical compressed output for the same coder id. A
# compress:batch request against the warm daemon closes the loop: the
# batch path must also run entirely from restored artifacts.
#
# Usage: scripts/persist_smoke.sh [port]
#
# With CCRP_SMOKE_DIR set, the working directory (daemon logs, span
# files, the store itself) is created under it and kept, so CI can
# upload it as a failure artifact; otherwise a mktemp dir is cleaned up.
set -eu
# pipefail surfaces failures on the left side of pipes; it is not in
# POSIX sh everywhere, so probe for it instead of assuming bash.
(set -o pipefail 2>/dev/null) && set -o pipefail


cd "$(dirname "$0")/.."

port=${1:-8644}
base="http://127.0.0.1:${port}"
wl=eightq

if [ -n "${CCRP_SMOKE_DIR:-}" ]; then
	work="$CCRP_SMOKE_DIR/persist_smoke"
	mkdir -p "$work"
	keep=1
else
	work=$(mktemp -d)
	keep=
fi
store="$work/store"

fail() {
	echo "persist_smoke: FAILED: $1" >&2
	for log in "$work"/ccrpd*.log; do
		[ -f "$log" ] && sed "s|^|$(basename "$log"): |" "$log" >&2
	done
	exit 1
}

cleanup() {
	[ -n "${pid:-}" ] && kill "$pid" 2>/dev/null || true
	if [ -z "$keep" ]; then
		rm -rf "$work"
	fi
}
trap cleanup EXIT

# jsonget FILE EXPR: print a field of a JSON document.
jsonget() {
	python3 -c 'import json,sys; print(json.load(open(sys.argv[1]))'"$2"')' "$1"
}

# metric FILE NAME: print one unlabeled metric value from a scrape.
metric() {
	awk -v name="$2" '$1 == name { print $2 }' "$1"
}

wait_healthy() {
	i=0
	until curl -fsS "$base/healthz" >/dev/null 2>&1; do
		i=$((i + 1))
		[ "$i" -ge 50 ] && fail "daemon did not become healthy"
		kill -0 "$pid" 2>/dev/null || fail "daemon exited during startup"
		sleep 0.2
	done
}

drain() {
	kill -TERM "$pid"
	i=0
	while kill -0 "$pid" 2>/dev/null; do
		i=$((i + 1))
		[ "$i" -ge 100 ] && fail "daemon did not exit after SIGTERM"
		sleep 0.1
	done
	wait "$pid" || fail "daemon exited nonzero after SIGTERM"
	pid=
}

echo "== building"
go build -o "$work/ccrpd" ./cmd/ccrpd

echo "== first life: ccrpd -store $store"
"$work/ccrpd" -addr "127.0.0.1:${port}" -store "$store" \
	>"$work/ccrpd1.log" 2>&1 &
pid=$!
wait_healthy

echo "== training two coders and compressing $wl"
curl -fsS -X POST "$base/v1/coders" -d '{"kind":"preselected"}' \
	>"$work/coder.json" || fail "train preselected"
coder=$(jsonget "$work/coder.json" '["id"]')
curl -fsS -X POST "$base/v1/coders" \
	-d "{\"kind\":\"codepack\",\"workloads\":[\"$wl\"]}" \
	>"$work/codepack.json" || fail "train codepack"
cpcoder=$(jsonget "$work/codepack.json" '["id"]')
curl -fsS -X POST "$base/v1/compress" \
	-d "{\"coder_id\":\"$coder\",\"workload\":\"$wl\"}" \
	>"$work/compress1.json" || fail "compress (first life)"

curl -fsS "$base/metrics" >"$work/metrics1.prom" || fail "metrics scrape (first life)"
[ "$(metric "$work/metrics1.prom" ccrpd_coder_builds_total)" = "2" ] \
	|| fail "first life did not build exactly 2 coders"
writes=$(metric "$work/metrics1.prom" ccrpd_store_writes_total)
[ "${writes:-0}" -ge 2 ] || fail "first life persisted $writes artifacts, want >= 2"

echo "== SIGTERM drain (first life)"
drain
[ -n "$(ls "$store"/*.art 2>/dev/null)" ] || fail "store is empty after drain"

echo "== second life: same store, fresh process"
"$work/ccrpd" -addr "127.0.0.1:${port}" -store "$store" \
	>"$work/ccrpd2.log" 2>&1 &
pid=$!
wait_healthy
grep -q "warm start: 2 coders" "$work/ccrpd2.log" \
	|| fail "second life did not warm-start 2 coders"

echo "== warm serving: both coder ids, byte-identical output, zero builds"
curl -fsS -X POST "$base/v1/compress" \
	-d "{\"coder_id\":\"$coder\",\"workload\":\"$wl\"}" \
	>"$work/compress2.json" || fail "compress (second life)"
curl -fsS -X POST "$base/v1/compress" \
	-d "{\"coder_id\":\"$cpcoder\",\"workload\":\"$wl\"}" \
	>/dev/null || fail "compress with restored codepack coder"
python3 -c '
import json, sys
a, b = (json.load(open(p)) for p in sys.argv[1:3])
assert a["rom_b64"] == b["rom_b64"], "ROM images differ across the restart"
assert a["blocks_b64"] == b["blocks_b64"], "block images differ across the restart"
' "$work/compress1.json" "$work/compress2.json" \
	|| fail "compressed bytes differ across the restart"

echo "== retraining is a store hit, not a build"
curl -fsS -X POST "$base/v1/coders" -d '{"kind":"preselected"}' \
	>"$work/retrain.json" || fail "retrain request"
[ "$(jsonget "$work/retrain.json" '["id"]')" = "$coder" ] \
	|| fail "retrained coder id changed across the restart"

echo "== batch sanity on the warm daemon"
curl -fsS -X POST "$base/v1/compress:batch" \
	-d "{\"coder_id\":\"$coder\",\"items\":[{\"workload\":\"$wl\"},{\"workload\":\"$wl\"}]}" \
	>"$work/batch.json" || fail "compress:batch request"
python3 -c '
import json, sys
batch, single = (json.load(open(p)) for p in sys.argv[1:3])
assert batch["errors"] == 0 and len(batch["items"]) == 2, batch
for item in batch["items"]:
    assert item["result"]["blocks_b64"] == single["blocks_b64"], \
        "batch item differs from the single-request result"
' "$work/batch.json" "$work/compress2.json" || fail "batch output mismatch"

echo "== second-life metrics: zero retrains, warm gauge, no corruption"
curl -fsS "$base/metrics" >"$work/metrics2.prom" || fail "metrics scrape (second life)"
[ "$(metric "$work/metrics2.prom" ccrpd_coder_builds_total)" = "0" ] \
	|| fail "second life retrained a coder"
[ "$(metric "$work/metrics2.prom" ccrpd_store_warm_coders)" = "2" ] \
	|| fail "warm-coder gauge is not 2"
[ "$(metric "$work/metrics2.prom" ccrpd_store_corrupt_total)" = "0" ] \
	|| fail "store reported corruption on a clean restart"
hits=$(metric "$work/metrics2.prom" ccrpd_store_hits_total)
[ "${hits:-0}" -ge 2 ] || fail "second life took $hits store hits, want >= 2"

echo "== SIGTERM drain (second life)"
drain

echo "persist_smoke: OK"
