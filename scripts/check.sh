#!/bin/sh
# Repo-wide hygiene gate: build, vet, format, lint, and the full test
# suite under the race detector. Run from the repository root (make
# check). Any failing stage aborts the run with exit code 1 and names
# itself, so CI logs and local runs point straight at the broken gate.
set -eu
# pipefail surfaces failures on the left side of pipes; it is not in
# POSIX sh everywhere, so probe for it instead of assuming bash.
(set -o pipefail 2>/dev/null) && set -o pipefail


cd "$(dirname "$0")/.."

# Pinned staticcheck version, run via `go run` so nothing is installed
# into the module. CI caches the module download; offline environments
# skip the stage (see below) rather than failing on a network error.
STATICCHECK=honnef.co/go/tools/cmd/staticcheck@2025.1.1

fail() {
	echo "check: FAILED at stage: $1" >&2
	exit 1
}

stage() {
	name=$1
	shift
	echo "== $name"
	"$@" || fail "$name"
}

stage "go build ./..." go build ./...
stage "go vet ./..." go vet ./...

echo "== gofmt -l"
badfmt=$(gofmt -l .) || fail "gofmt -l"
if [ -n "$badfmt" ]; then
	echo "gofmt needed on:" >&2
	echo "$badfmt" >&2
	fail "gofmt -l"
fi

echo "== staticcheck ./..."
if go run "$STATICCHECK" -version >/dev/null 2>&1; then
	go run "$STATICCHECK" ./... || fail "staticcheck ./..."
else
	echo "staticcheck unavailable (offline? toolchain too old?); skipping"
fi

stage "go test -race ./..." go test -race ./...
stage "isa smoke" sh scripts/isa_smoke.sh
stage "decode smoke" sh scripts/decode_smoke.sh
stage "trace smoke" sh scripts/trace_smoke.sh
stage "persist smoke" sh scripts/persist_smoke.sh
stage "fleet smoke" sh scripts/fleet_smoke.sh

echo "check: OK"
