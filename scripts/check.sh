#!/bin/sh
# Repo-wide hygiene gate: build, vet, format, and the full test suite
# under the race detector. Run from the repository root (make check).
set -eu

cd "$(dirname "$0")/.."

echo "== go build ./..."
go build ./...

echo "== go vet ./..."
go vet ./...

echo "== gofmt -l"
badfmt=$(gofmt -l .)
if [ -n "$badfmt" ]; then
	echo "gofmt needed:" >&2
	echo "$badfmt" >&2
	exit 1
fi

echo "== go test -race ./..."
go test -race ./...

echo "check: OK"
