#!/bin/sh
# ISA-backend smoke: the same logical program (sum 1..10, print 55) is
# assembled and simulated on every registered backend through the
# ccasm/ccsim/ccdis flow, so a regression in the isa abstraction layer —
# wrong backend picked from an image, a disassembler/parser drift, a
# broken executor — fails the build with the stage named. Finishes with
# the RVC expansion gates: the known 16-bit -> 32-bit vectors and the
# exhaustive expand/compress differential over all 65536 halfwords.
#
# Usage: sh scripts/isa_smoke.sh
set -eu
# pipefail surfaces failures on the left side of pipes; it is not in
# POSIX sh everywhere, so probe for it instead of assuming bash.
(set -o pipefail 2>/dev/null) && set -o pipefail

cd "$(dirname "$0")/.."

TMP=$(mktemp -d)
trap 'rm -rf "$TMP"' EXIT

fail() {
	echo "isa_smoke: FAILED at stage: $1" >&2
	exit 1
}

cat > "$TMP/sum.mips.s" <<'EOF'
	.text
__start:
	li	$t0, 10
	li	$t1, 0
loop:
	addu	$t1, $t1, $t0
	addiu	$t0, $t0, -1
	bne	$t0, $zero, loop
	move	$a0, $t1
	li	$v0, 1
	syscall
	li	$v0, 10
	syscall
EOF

cat > "$TMP/sum.rv32.s" <<'EOF'
	.text
__start:
	li	t0, 10
	li	t1, 0
loop:
	add	t1, t1, t0
	addi	t0, t0, -1
	bnez	t0, loop
	mv	a0, t1
	li	a7, 1
	ecall
	li	a7, 10
	ecall
EOF

for ISA in mips rv32; do
	echo "== ccasm -isa $ISA"
	go run ./cmd/ccasm -isa "$ISA" -o "$TMP/sum.$ISA.img" "$TMP/sum.$ISA.s" \
		|| fail "ccasm $ISA"

	echo "== ccasm -l (listing disassembles through the $ISA backend)"
	go run ./cmd/ccasm -isa "$ISA" -l "$TMP/sum.$ISA.s" > "$TMP/sum.$ISA.lst" \
		|| fail "ccasm -l $ISA"

	echo "== ccdis (image carries isa=$ISA)"
	go run ./cmd/ccdis "$TMP/sum.$ISA.img" > "$TMP/sum.$ISA.dis" || fail "ccdis $ISA"

	echo "== ccsim (simulate on the $ISA executor)"
	go run ./cmd/ccsim -q -json "$TMP/sum.$ISA.img" > "$TMP/sum.$ISA.json" \
		|| fail "ccsim $ISA"
done

# Both backends must compute the same answer from their own encodings.
grep -q "syscall" "$TMP/sum.mips.dis" || fail "mips disassembly content"
grep -q "ecall" "$TMP/sum.rv32.dis" || fail "rv32 disassembly content"
for ISA in mips rv32; do
	go run ./cmd/ccsim -cache 1024 "$TMP/sum.$ISA.img" > "$TMP/run.$ISA.txt" \
		|| fail "ccsim output $ISA"
	OUT=$(head -1 "$TMP/run.$ISA.txt")
	case "$OUT" in
	55*) ;;
	*) echo "isa_smoke: $ISA printed '$OUT', want 55" >&2; fail "program output $ISA" ;;
	esac
done
echo "both backends print 55"

echo "== rv32 workload through the full sweep path"
go run ./cmd/ccsim -workload rv-sieve -q > "$TMP/rv-sieve.txt" || fail "ccsim -workload rv-sieve"
grep -q "relative performance" "$TMP/rv-sieve.txt" || fail "rv-sieve report"

echo "== RVC expansion vectors + expand/compress differential (65536 halfwords)"
go test -run '^TestExpand(Vectors|Rejects|CompressDifferential)$' -count=1 ./internal/riscv \
	|| fail "rvc expansion gates"

echo "== cross-backend disassembly round trip (contract test)"
go test -run '^TestDisassemblyRoundTrip$' -count=1 ./internal/isa \
	|| fail "disassembly round trip"

echo "isa_smoke: OK"
