#!/bin/sh
# Tracing end-to-end smoke test: start ccrpd with span export enabled,
# drive it with a short ccrp-load burst under an intentionally loose SLO,
# SIGTERM the daemon so the JSONL span sink flushes, then assert that
# ccrp-spans parses the stream and that every instrumented request stage
# shows up: the request root, body decode, coder resolve/train, compress,
# decompress, simulate queue+run, and response encode. Also checks trace
# correlation (ccrp-load's recorded slow-trace ids appear in the span
# file and the access log) and the runtime telemetry on /metrics.
#
# Usage: scripts/trace_smoke.sh [port]
#
# With CCRP_SMOKE_DIR set, the working directory (daemon log, span and
# access JSONL) lives under it and is kept for CI failure-artifact
# upload.
set -eu
# pipefail surfaces failures on the left side of pipes; it is not in
# POSIX sh everywhere, so probe for it instead of assuming bash.
(set -o pipefail 2>/dev/null) && set -o pipefail


cd "$(dirname "$0")/.."

port=${1:-8643}
base="http://127.0.0.1:${port}"
if [ -n "${CCRP_SMOKE_DIR:-}" ]; then
	work="$CCRP_SMOKE_DIR/trace_smoke"
	mkdir -p "$work"
	keep=1
else
	work=$(mktemp -d)
	keep=
fi

fail() {
	echo "trace_smoke: FAILED: $1" >&2
	[ -f "$work/ccrpd.log" ] && sed 's/^/ccrpd: /' "$work/ccrpd.log" >&2
	exit 1
}

cleanup() {
	[ -n "${pid:-}" ] && kill "$pid" 2>/dev/null || true
	if [ -z "$keep" ]; then
		rm -rf "$work"
	fi
}
trap cleanup EXIT

echo "== building"
go build -o "$work/ccrpd" ./cmd/ccrpd
go build -o "$work/ccrp-load" ./cmd/ccrp-load
go build -o "$work/ccrp-spans" ./cmd/ccrp-spans

echo "== starting ccrpd on $base with -trace"
"$work/ccrpd" -addr "127.0.0.1:${port}" \
	-trace "$work/spans.jsonl" -access-log "$work/access.jsonl" \
	>"$work/ccrpd.log" 2>&1 &
pid=$!

echo "== waiting for /healthz"
i=0
until curl -fsS "$base/healthz" >/dev/null 2>&1; do
	i=$((i + 1))
	[ "$i" -ge 50 ] && fail "daemon did not become healthy"
	kill -0 "$pid" 2>/dev/null || fail "daemon exited during startup"
	sleep 0.2
done

echo "== ccrp-load burst (SLO-gated)"
"$work/ccrp-load" -url "$base" -clients 4 -requests 24 \
	-mix compress=2,roundtrip=2,simulate=1 \
	-slo max=60s,error-rate=0,min-rps=0.5 \
	-o "$work/load.json" || fail "ccrp-load burst (or its SLO)"

echo "== runtime telemetry on /metrics"
curl -fsS "$base/metrics" >"$work/metrics.prom" || fail "metrics scrape"
for m in go_goroutines go_heap_alloc_bytes go_gc_cycles_total; do
	grep -q "^$m " "$work/metrics.prom" || fail "metrics missing $m"
done

echo "== tail capture on /debug/traces"
curl -fsS "$base/debug/traces" >"$work/traces.json" || fail "debug/traces fetch"
python3 -c '
import json, sys
snap = json.load(open(sys.argv[1]))
assert snap["slow"], "tail capture is empty after a load burst"
assert snap["slow"][0]["stage"] == "request", snap["slow"][0]
' "$work/traces.json" || fail "tail capture empty or malformed"

echo "== SIGTERM drain (flushes the span sink)"
kill -TERM "$pid"
i=0
while kill -0 "$pid" 2>/dev/null; do
	i=$((i + 1))
	[ "$i" -ge 100 ] && fail "daemon did not exit after SIGTERM"
	sleep 0.1
done
wait "$pid" || fail "daemon exited nonzero after SIGTERM"
pid=

[ -s "$work/spans.jsonl" ] || fail "span file is empty"

echo "== ccrp-spans parses the stream"
"$work/ccrp-spans" -json "$work/spans.jsonl" >"$work/analysis.json" \
	|| fail "ccrp-spans rejected the span file"

echo "== every instrumented stage is present"
python3 -c '
import json, sys
a = json.load(open(sys.argv[1]))
stages = {s["stage"] for s in a["stages"]}
want = {"request", "decode_body", "text_resolve", "coder_resolve",
        "coder_train", "compress", "decompress", "sim_queue", "sim_run",
        "encode_response"}
missing = want - stages
assert not missing, f"missing stages: {sorted(missing)} (have {sorted(stages)})"
assert a["roots"] > 0 and a["traces"] > 0, a
assert a["coverage"]["roots"] > 0, "no decomposed roots"
' "$work/analysis.json" || fail "stage decomposition incomplete"

echo "== slow-trace ids correlate across load report, spans, and access log"
python3 -c '
import json, sys
load = json.load(open(sys.argv[1]))
spans = {json.loads(l)["trace"] for l in open(sys.argv[2])}
access = {json.loads(l).get("trace") for l in open(sys.argv[3])}
ids = [t for cs in load["classes"].values() for t in cs.get("slow_traces", [])]
assert ids, "load report recorded no slow-trace ids"
for t in ids:
    assert t in spans, f"trace {t} from the load report is not in the span file"
    assert t in access, f"trace {t} from the load report is not in the access log"
' "$work/load.json" "$work/spans.jsonl" "$work/access.jsonl" \
	|| fail "trace ids do not correlate"

echo "trace_smoke: OK"
