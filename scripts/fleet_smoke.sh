#!/bin/sh
# Fleet-serving gate: boot a 3-node ccrpd fleet sharing one artifact
# store behind a ccrp-router gateway, then prove the cluster layer's
# three contracts end to end:
#
#   1. Placement — requests naming one coder id always land on the same
#      healthy node (consistent-hash stickiness, observed via the
#      X-Ccrp-Backend header and router metrics), while keyless traffic
#      spreads across the fleet (the load report's backends map).
#   2. Survival — kill -9 one backend mid-load and the client sees zero
#      5xx and zero failures: the health checker ejects the node after a
#      few failed forwards, traffic fails over along the ring, and the
#      successor serves the dead node's coder from the shared store.
#   3. Correlation — a trace id minted by the router appears in the
#      backend's access log: one trace spans both hops.
#
# The run also measures the router hop: the same SLO-gated mixed load is
# driven once directly against a backend and once through the gateway,
# and the paired percentiles (plus the observed per-node distribution
# and the kill-run outcome) are merged into a benchmark document —
# written to $FLEET_BENCH_OUT when set (make bench-fleet), else kept in
# the working directory.
#
# Usage: scripts/fleet_smoke.sh [base_port]
#
# Ports base..base+3 are used (router, then three backends). With
# CCRP_SMOKE_DIR set, the working directory (daemon logs, access and
# span JSONL, the shared store) is kept for CI failure-artifact upload.
set -eu
# pipefail surfaces failures on the left side of pipes; it is not in
# POSIX sh everywhere, so probe for it instead of assuming bash.
(set -o pipefail 2>/dev/null) && set -o pipefail


cd "$(dirname "$0")/.."

baseport=${1:-8654}
rport=$baseport
p1=$((baseport + 1))
p2=$((baseport + 2))
p3=$((baseport + 3))
router="http://127.0.0.1:${rport}"
wl=eightq

if [ -n "${CCRP_SMOKE_DIR:-}" ]; then
	work="$CCRP_SMOKE_DIR/fleet_smoke"
	mkdir -p "$work"
	keep=1
else
	work=$(mktemp -d)
	keep=
fi
store="$work/store"

fail() {
	echo "fleet_smoke: FAILED: $1" >&2
	for log in "$work"/*.log; do
		[ -f "$log" ] && sed "s|^|$(basename "$log"): |" "$log" >&2
	done
	exit 1
}

cleanup() {
	for p in "${pid1:-}" "${pid2:-}" "${pid3:-}" "${rpid:-}"; do
		[ -n "$p" ] && kill "$p" 2>/dev/null || true
	done
	if [ -z "$keep" ]; then
		rm -rf "$work"
	fi
}
trap cleanup EXIT

# jsonget FILE EXPR: print a field of a JSON document.
jsonget() {
	python3 -c 'import json,sys; print(json.load(open(sys.argv[1]))'"$2"')' "$1"
}

# metric FILE NAME: print one metric value from a Prometheus scrape.
# NAME may include a label selector, e.g. 'name{node="host:port"}'.
metric() {
	awk -v name="$2" '$1 == name { print $2 }' "$1"
}

# wait_url URL WHAT: poll until URL answers 2xx.
wait_url() {
	i=0
	until curl -fsS "$1" >/dev/null 2>&1; do
		i=$((i + 1))
		[ "$i" -ge 50 ] && fail "$2 did not become healthy"
		sleep 0.2
	done
}

# backend_of HEADERS: print the X-Ccrp-Backend value of a response dump.
backend_of() {
	awk 'tolower($1) == "x-ccrp-backend:" { gsub("\r", "", $2); print $2 }' "$1"
}

echo "== building"
go build -o "$work/ccrpd" ./cmd/ccrpd
go build -o "$work/ccrp-router" ./cmd/ccrp-router
go build -o "$work/ccrp-load" ./cmd/ccrp-load

echo "== booting 3 backends sharing $store"
for n in 1 2 3; do
	port=$(eval echo "\$p$n")
	"$work/ccrpd" -addr "127.0.0.1:${port}" -store "$store" \
		-access-log "$work/backend${n}.access.jsonl" \
		>"$work/backend${n}.log" 2>&1 &
	eval "pid$n=$!"
done
for n in 1 2 3; do
	port=$(eval echo "\$p$n")
	wait_url "http://127.0.0.1:${port}/healthz" "backend $n"
done

echo "== booting ccrp-router in front of the fleet"
fleet="127.0.0.1:${p1},127.0.0.1:${p2},127.0.0.1:${p3}"
"$work/ccrp-router" -addr "127.0.0.1:${rport}" -fleet "$fleet" \
	-probe-interval 200ms -max-attempts 4 \
	-access-log "$work/router.access.jsonl" -trace "$work/router.spans.jsonl" \
	>"$work/router.log" 2>&1 &
rpid=$!
wait_url "$router/healthz" "router"
[ "$(curl -fsS "$router/healthz" | python3 -c 'import json,sys; print(json.load(sys.stdin)["nodes_up"])')" = "3" ] \
	|| fail "router does not see 3 nodes up"

echo "== baseline: SLO-gated load directly against backend 1"
"$work/ccrp-load" -url "http://127.0.0.1:${p1}" -clients 4 -requests 60 \
	-mix compress=3,roundtrip=2,simulate=1 -timeout 30s \
	-slo max=60s,error-rate=0,min-rps=0.5 \
	-o "$work/direct.json" 2>"$work/direct.stderr" \
	|| fail "direct baseline load (or its SLO)"

echo "== gateway: the same load through ccrp-router"
"$work/ccrp-load" -url "$router" -clients 4 -requests 60 \
	-mix compress=3,roundtrip=2,simulate=1 -timeout 30s \
	-slo max=60s,error-rate=0,min-rps=0.5 \
	-o "$work/viarouter.json" 2>"$work/viarouter.stderr" \
	|| fail "gateway load (or its SLO)"
[ "$(jsonget "$work/viarouter.json" '["status_5xx"]')" = "0" ] \
	|| fail "gateway load saw 5xx responses"
nodes_used=$(python3 -c '
import json, sys
print(len(json.load(open(sys.argv[1])).get("backends", {})))' "$work/viarouter.json")
[ "$nodes_used" -ge 2 ] || fail "gateway load used $nodes_used nodes, want >= 2 (keyless traffic should spread)"

echo "== stickiness: one coder id, one healthy node"
curl -fsS -X POST "$router/v1/coders" -d '{"kind":"preselected"}' \
	>"$work/coder.json" || fail "train via router"
coder=$(jsonget "$work/coder.json" '["id"]')
curl -fsS -D "$work/h1.txt" -X POST "$router/v1/compress" \
	-d "{\"coder_id\":\"$coder\",\"workload\":\"$wl\"}" \
	>"$work/compress1.json" || fail "compress via router"
curl -fsS -D "$work/h2.txt" -X POST "$router/v1/compress" \
	-d "{\"coder_id\":\"$coder\",\"workload\":\"$wl\"}" >/dev/null \
	|| fail "second compress via router"
owner=$(backend_of "$work/h1.txt")
[ -n "$owner" ] || fail "router response carries no X-Ccrp-Backend header"
[ "$(backend_of "$work/h2.txt")" = "$owner" ] \
	|| fail "same coder id landed on different nodes"

echo "== kill -9 the coder's owner ($owner) under load"
case $owner in
*:$p1) victim=$pid1 ;;
*:$p2) victim=$pid2 ;;
*:$p3) victim=$pid3 ;;
*) fail "owner $owner is not a fleet member" ;;
esac
reqkey="ccrp_router_requests_total{node=\"$owner\"}"
curl -fsS "$router/metrics" >"$work/metrics.pre.prom" || fail "pre-kill metrics scrape"
pre=$(metric "$work/metrics.pre.prom" "$reqkey")
"$work/ccrp-load" -url "$router" -clients 4 -requests 90 \
	-mix compress=3,roundtrip=2,simulate=1 -timeout 30s \
	-slo error-rate=0 \
	-o "$work/killrun.json" 2>"$work/killrun.stderr" &
loadpid=$!
# Wait until the load is demonstrably flowing to the victim, then kill it
# mid-run — the whole point is failing over traffic that is in flight.
i=0
while :; do
	curl -fsS "$router/metrics" >"$work/metrics.mid.prom" 2>/dev/null || true
	now=$(metric "$work/metrics.mid.prom" "$reqkey" 2>/dev/null || true)
	[ "${now:-$pre}" -gt "$((pre + 2))" ] && break
	kill -0 "$loadpid" 2>/dev/null || break
	i=$((i + 1))
	[ "$i" -ge 100 ] && fail "load never reached the victim node"
	sleep 0.1
done
kill -9 "$victim"
if [ "$victim" = "$pid1" ]; then
	pid1=
elif [ "$victim" = "$pid2" ]; then
	pid2=
else
	pid3=
fi
wait "$loadpid" || fail "client-visible failures during the kill (see killrun.stderr)"
[ "$(jsonget "$work/killrun.json" '["status_5xx"]')" = "0" ] \
	|| fail "kill run saw 5xx responses"
[ "$(jsonget "$work/killrun.json" '["overall"]["errors"]')" = "0" ] \
	|| fail "kill run recorded client errors"

echo "== ring re-stabilizes: victim ejected, coder fails over, placement stable"
i=0
until [ "$(curl -fsS "$router/healthz" | python3 -c 'import json,sys; print(json.load(sys.stdin)["nodes_up"])')" = "2" ]; do
	i=$((i + 1))
	[ "$i" -ge 50 ] && fail "router never marked the victim down"
	sleep 0.2
done
curl -fsS -D "$work/h3.txt" -X POST "$router/v1/compress" \
	-d "{\"coder_id\":\"$coder\",\"workload\":\"$wl\"}" \
	>"$work/compress3.json" || fail "compress after the kill"
successor=$(backend_of "$work/h3.txt")
[ -n "$successor" ] && [ "$successor" != "$owner" ] \
	|| fail "post-kill compress answered by $successor, want a surviving node"
# The cross-hop trace probe rides this request: the victim's buffered
# access log died with it, but the successor drains cleanly below.
tid=$(awk 'tolower($1) == "x-ccrp-trace-id:" { gsub("\r", "", $2); print $2 }' "$work/h3.txt")
[ -n "$tid" ] || fail "router response carries no trace id"
curl -fsS -D "$work/h4.txt" -X POST "$router/v1/compress" \
	-d "{\"coder_id\":\"$coder\",\"workload\":\"$wl\"}" >/dev/null \
	|| fail "second post-kill compress"
[ "$(backend_of "$work/h4.txt")" = "$successor" ] \
	|| fail "post-kill placement is not stable"
python3 -c '
import json, sys
a, b = (json.load(open(p)) for p in sys.argv[1:3])
assert a["blocks_b64"] == b["blocks_b64"], "successor blocks differ from the owner output"
assert a["rom_b64"] == b["rom_b64"], "successor ROM differs from the owner output"
' "$work/compress1.json" "$work/compress3.json" \
	|| fail "failover output is not byte-identical"

echo "== router metrics recorded the failure"
curl -fsS "$router/metrics" >"$work/metrics.post.prom" || fail "post-kill metrics scrape"
errs=$(metric "$work/metrics.post.prom" "ccrp_router_node_errors_total{node=\"$owner\"}")
[ "${errs:-0}" -ge 1 ] || fail "no forward errors recorded against the victim"
[ "$(metric "$work/metrics.post.prom" "ccrp_router_node_up{node=\"$owner\"}")" = "0" ] \
	|| fail "victim still reported up"

echo "== drain: backends flush, then the router"
for n in 1 2 3; do
	p=$(eval echo "\${pid$n:-}")
	[ -z "$p" ] && continue
	kill -TERM "$p"
	i=0
	while kill -0 "$p" 2>/dev/null; do
		i=$((i + 1))
		[ "$i" -ge 100 ] && fail "backend $n did not exit after SIGTERM"
		sleep 0.1
	done
	wait "$p" || fail "backend $n exited nonzero after SIGTERM"
	eval "pid$n="
done
kill -TERM "$rpid"
i=0
while kill -0 "$rpid" 2>/dev/null; do
	i=$((i + 1))
	[ "$i" -ge 100 ] && fail "router did not exit after SIGTERM"
	sleep 0.1
done
wait "$rpid" || fail "router exited nonzero after SIGTERM"
rpid=

echo "== one trace spans both hops"
grep -q "\"trace\":\"$tid\"" "$work/router.access.jsonl" \
	|| fail "router access log is missing the probe trace id"
cat "$work"/backend?.access.jsonl >"$work/backends.access.jsonl"
grep -q "\"trace\":\"$tid\"" "$work/backends.access.jsonl" \
	|| fail "no backend adopted the router's trace id (trace does not span the hop)"

echo "== merging the benchmark document"
python3 - "$work/direct.json" "$work/viarouter.json" "$work/killrun.json" \
	>"$work/BENCH_fleet.json" <<'PY'
import json, sys
direct, via, kill = (json.load(open(p)) for p in sys.argv[1:4])
pick = lambda r: {k: r["overall"][k] for k in ("p50_ms", "p95_ms", "p99_ms", "requests")}
doc = {
    "schema": 1,
    "tool": "fleet_smoke",
    "version": via.get("version", ""),
    "direct": pick(direct),
    "via_router": pick(via),
    "router_overhead_p50_ms": round(via["overall"]["p50_ms"] - direct["overall"]["p50_ms"], 3),
    "router_overhead_p99_ms": round(via["overall"]["p99_ms"] - direct["overall"]["p99_ms"], 3),
    "backends": via.get("backends", {}),
    "kill_run": {
        "requests": kill["overall"]["requests"],
        "errors": kill["overall"]["errors"],
        "status_5xx": kill["status_5xx"],
        "backends": kill.get("backends", {}),
    },
    "host": via.get("host", {}),
}
json.dump(doc, sys.stdout, indent=2)
print()
PY
if [ -n "${FLEET_BENCH_OUT:-}" ]; then
	cp "$work/BENCH_fleet.json" "$FLEET_BENCH_OUT"
	echo "fleet_smoke: benchmark written to $FLEET_BENCH_OUT"
fi

echo "fleet_smoke: OK"
