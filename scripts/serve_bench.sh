#!/bin/sh
# Serving benchmark: start ccrpd, drive it with cmd/ccrp-load's mixed
# traffic (compress, byte-verified round trips, simulate points) from
# concurrent clients, and write BENCH_<label>.json with p50/p95/p99
# latencies, throughput, and host metadata. The load generator exits
# nonzero on any 5xx or any round trip that is not byte-identical, so
# this script doubles as a correctness gate under concurrency.
#
# Usage: scripts/serve_bench.sh [label] [extra ccrp-load flags...]
set -eu
# pipefail surfaces failures on the left side of pipes; it is not in
# POSIX sh everywhere, so probe for it instead of assuming bash.
(set -o pipefail 2>/dev/null) && set -o pipefail


cd "$(dirname "$0")/.."

label=${1:-PR3}
[ $# -gt 0 ] && shift

port=${CCRPD_PORT:-8643}
base="http://127.0.0.1:${port}"
out="BENCH_${label}.json"
work=$(mktemp -d)

cleanup() {
	[ -n "${pid:-}" ] && kill "$pid" 2>/dev/null || true
	rm -rf "$work"
}
trap cleanup EXIT

echo "== building"
go build -o "$work/ccrpd" ./cmd/ccrpd
go build -o "$work/ccrp-load" ./cmd/ccrp-load

echo "== starting ccrpd on $base"
"$work/ccrpd" -addr "127.0.0.1:${port}" >"$work/ccrpd.log" 2>&1 &
pid=$!

i=0
until curl -fsS "$base/healthz" >/dev/null 2>&1; do
	i=$((i + 1))
	if [ "$i" -ge 50 ]; then
		echo "serve_bench: daemon did not become healthy" >&2
		sed 's/^/ccrpd: /' "$work/ccrpd.log" >&2
		exit 1
	fi
	sleep 0.2
done

echo "== driving load -> $out"
"$work/ccrp-load" -url "$base" -o "$out" "$@"

kill -TERM "$pid"
wait "$pid" || true
pid=

echo "== $out written"
