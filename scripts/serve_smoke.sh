#!/bin/sh
# ccrpd end-to-end smoke test: start the daemon, poll /healthz until it
# answers, run a train -> compress -> decompress round trip and compare
# the served ROM byte-for-byte against cmd/ccpack's on-disk output for
# the same workload, scrape /metrics for the serving counters, then
# SIGTERM the daemon and assert a clean drain (exit 0).
#
# Usage: scripts/serve_smoke.sh [port]
#
# Needs only a POSIX shell, go, and python3 (JSON field extraction and
# base64 decoding; both are present in CI images and dev containers).
# With CCRP_SMOKE_DIR set, the working directory (daemon log, access
# log) lives under it and is kept for CI failure-artifact upload.
set -eu
# pipefail surfaces failures on the left side of pipes; it is not in
# POSIX sh everywhere, so probe for it instead of assuming bash.
(set -o pipefail 2>/dev/null) && set -o pipefail


cd "$(dirname "$0")/.."

port=${1:-8642}
base="http://127.0.0.1:${port}"
if [ -n "${CCRP_SMOKE_DIR:-}" ]; then
	work="$CCRP_SMOKE_DIR/serve_smoke"
	mkdir -p "$work"
	keep=1
else
	work=$(mktemp -d)
	keep=
fi
wl=eightq

fail() {
	echo "serve_smoke: FAILED: $1" >&2
	[ -f "$work/ccrpd.log" ] && sed 's/^/ccrpd: /' "$work/ccrpd.log" >&2
	exit 1
}

cleanup() {
	[ -n "${pid:-}" ] && kill "$pid" 2>/dev/null || true
	if [ -z "$keep" ]; then
		rm -rf "$work"
	fi
}
trap cleanup EXIT

# jsonget FILE EXPR: print a field of a JSON document.
jsonget() {
	python3 -c 'import json,sys; print(json.load(open(sys.argv[1]))'"$2"')' "$1"
}

echo "== building"
go build -o "$work/ccrpd" ./cmd/ccrpd
go build -o "$work/ccpack" ./cmd/ccpack

echo "== starting ccrpd on $base"
"$work/ccrpd" -addr "127.0.0.1:${port}" -access-log "$work/access.jsonl" \
	>"$work/ccrpd.log" 2>&1 &
pid=$!

echo "== waiting for /healthz"
i=0
until curl -fsS "$base/healthz" >"$work/healthz.json" 2>/dev/null; do
	i=$((i + 1))
	[ "$i" -ge 50 ] && fail "daemon did not become healthy"
	kill -0 "$pid" 2>/dev/null || fail "daemon exited during startup"
	sleep 0.2
done
[ "$(jsonget "$work/healthz.json" '["status"]')" = "ok" ] || fail "healthz status not ok"

echo "== training the preselected coder"
curl -fsS -X POST "$base/v1/coders" -d '{"kind":"preselected"}' \
	>"$work/coder.json" || fail "train request"
coder=$(jsonget "$work/coder.json" '["id"]')
[ -n "$coder" ] || fail "no coder id returned"

echo "== compressing workload $wl"
curl -fsS -X POST "$base/v1/compress" \
	-d "{\"coder_id\":\"$coder\",\"workload\":\"$wl\"}" \
	>"$work/compress.json" || fail "compress request"

echo "== comparing the served ROM against ccpack's output"
"$work/ccpack" -workload "$wl" -o "$work/ref.rom" >/dev/null
python3 -c '
import base64, json, sys
served = base64.b64decode(json.load(open(sys.argv[1]))["rom_b64"])
open(sys.argv[2], "wb").write(served)
' "$work/compress.json" "$work/served.rom"
cmp "$work/served.rom" "$work/ref.rom" || fail "served ROM differs from ccpack output"

echo "== decompress round trip"
python3 -c '
import json, sys
comp = json.load(open(sys.argv[1]))
json.dump({"rom_b64": comp["rom_b64"]}, open(sys.argv[2], "w"))
' "$work/compress.json" "$work/decreq.json"
curl -fsS -X POST "$base/v1/decompress" --data-binary "@$work/decreq.json" \
	>"$work/decompress.json" || fail "decompress request"
orig=$(jsonget "$work/compress.json" '["original_bytes"]')
back=$(jsonget "$work/decompress.json" '["original_bytes"]')
[ "$orig" = "$back" ] || fail "round trip size mismatch: $orig vs $back"

echo "== one simulate point"
curl -fsS -X POST "$base/v1/simulate" \
	-d "{\"workload\":\"$wl\",\"cache_bytes\":1024}" \
	>"$work/simulate.json" || fail "simulate request"
python3 -c '
import json, sys
rp = json.load(open(sys.argv[1]))["relative_performance"]
assert rp > 0, rp
' "$work/simulate.json" || fail "simulate returned no relative performance"

echo "== scraping /metrics"
curl -fsS "$base/metrics" >"$work/metrics.prom" || fail "metrics scrape"
grep -q 'ccrpd_requests_total{route="/v1/compress"}' "$work/metrics.prom" \
	|| fail "metrics missing compress counter"
grep -q 'ccrpd_coder_builds_total 1' "$work/metrics.prom" \
	|| fail "metrics missing single coder build"

echo "== SIGTERM drain"
kill -TERM "$pid"
i=0
while kill -0 "$pid" 2>/dev/null; do
	i=$((i + 1))
	[ "$i" -ge 100 ] && fail "daemon did not exit after SIGTERM"
	sleep 0.1
done
wait "$pid" || fail "daemon exited nonzero after SIGTERM"
pid=

[ -s "$work/access.jsonl" ] || fail "access log is empty"

echo "serve_smoke: OK"
