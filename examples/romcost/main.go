// romcost reproduces the cost argument of the paper's introduction: for
// every corpus program it prices the instruction ROM of a standard RISC
// system against a CCRP system, under all four compression methods of
// Figure 5 — the study a disk-array-controller or engine-controller team
// would run before committing to a design.
package main

import (
	"fmt"
	"log"

	"ccrp"
	"ccrp/internal/tablefmt"
)

func main() {
	rows, err := ccrp.Figure5()
	if err != nil {
		log.Fatal(err)
	}
	t := &tablefmt.Table{
		Title: "Instruction ROM budget per unit (EPROM bytes)",
		Headers: []string{"Program", "Standard RISC", "CCRP (preselected)",
			"Saved", "Whole-file LZW (unusable at run time)"},
	}
	var totalStd, totalCCRP int
	for _, r := range rows {
		if r.Program == "Weighted Average" {
			continue
		}
		// The CCRP ROM holds the compressed blocks plus the 3.125% LAT.
		ccrpBytes := int(r.Preselected*float64(r.OriginalBytes)) + r.OriginalBytes/32
		t.AddRow(r.Program,
			tablefmt.Bytes(r.OriginalBytes),
			tablefmt.Bytes(ccrpBytes),
			tablefmt.Pct(1-float64(ccrpBytes)/float64(r.OriginalBytes)),
			tablefmt.Bytes(int(r.Compress*float64(r.OriginalBytes))))
		totalStd += r.OriginalBytes
		totalCCRP += ccrpBytes
	}
	t.AddRow("TOTAL", tablefmt.Bytes(totalStd), tablefmt.Bytes(totalCCRP),
		tablefmt.Pct(1-float64(totalCCRP)/float64(totalStd)), "")
	fmt.Println(t.String())

	fmt.Println("A standard 27C512 EPROM stores 64 KB; programs that needed two chips")
	fmt.Println("often fit in one with CCRP compression, cutting parts cost, board")
	fmt.Println("space, and power on every production unit.")
	for _, r := range rows {
		if r.Program == "Weighted Average" {
			fmt.Printf("\nCorpus weighted average: %.1f%% of original size "+
				"(paper: ~73%% for the preselected code).\n", 100*r.Preselected)
		}
	}
}
