// Quickstart: assemble a small embedded program, execute it, compress it
// into a CCRP ROM, and compare the standard processor with the CCRP on
// the paper's three memory models.
package main

import (
	"fmt"
	"log"
	"os"

	"ccrp"
)

const source = `
# Compute and print the 16-bit checksum of a table, the kind of loop an
# embedded controller runs at boot.
	.data
table:
	.word 0x1234, 0x5678, 0x9ABC, 0xDEF0, 17, 42, 1992, 25
	.equ N, 8
	.text
__start:
	la   $t0, table
	li   $t1, N
	li   $t2, 0          # checksum
loop:
	lw   $t3, 0($t0)
	addiu $t0, $t0, 4
	addu $t2, $t2, $t3
	addiu $t1, $t1, -1
	bnez $t1, loop
	nop
	andi $a0, $t2, 0xFFFF
	li   $v0, 1          # print_int
	syscall
	li   $a0, '\n'
	li   $v0, 11         # print_char
	syscall
	li   $v0, 10         # exit
	syscall
`

func main() {
	// 1. Assemble and run on the functional simulator, collecting a trace.
	fmt.Println("-- program output --")
	res, err := ccrp.RunProgram("quickstart", source, os.Stdout)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("executed %d instructions (%d loads, %d stores)\n\n",
		res.Instructions, res.Loads, res.Stores)

	prog, err := ccrp.Assemble("quickstart", source)
	if err != nil {
		log.Fatal(err)
	}

	// 2. Compress the text section with the preselected code.
	code, err := ccrp.PreselectedCode()
	if err != nil {
		log.Fatal(err)
	}
	rom, err := ccrp.BuildROM(prog.Text, ccrp.ROMOptions{Codes: []*ccrp.Code{code}})
	if err != nil {
		log.Fatal(err)
	}
	if err := rom.Verify(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("-- compression --\ntext %d bytes -> %d bytes (%.1f%%), LAT overhead %.2f%%\n\n",
		rom.OriginalSize, rom.CompressedSize(), 100*rom.Ratio(),
		100*float64(rom.TableSize())/float64(rom.OriginalSize))

	// 3. Compare standard vs CCRP on each memory model.
	fmt.Println("-- standard vs CCRP --")
	for _, mem := range ccrp.MemoryModels() {
		cmp, err := ccrp.Compare(res.Trace, prog.Text, ccrp.SystemConfig{
			CacheBytes: 256,
			Mem:        mem,
			Codes:      []*ccrp.Code{code},
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-12s relative performance %.3f, memory traffic %.1f%%\n",
			mem.Name(), cmp.RelativePerformance(), 100*cmp.TrafficRatio())
	}
}
