// perfsweep sweeps cache size and memory model for one workload and
// prints the paper's Table 1-8 columns, showing where compressed code
// wins (slow EPROM) and where it costs (fast burst memory) — the
// development-time tuning pass the paper recommends in §4.3.
package main

import (
	"flag"
	"fmt"
	"log"

	"ccrp"
	"ccrp/internal/tablefmt"
)

func main() {
	name := flag.String("workload", "espresso", "corpus workload to sweep")
	flag.Parse()

	w, ok := ccrp.WorkloadByName(*name)
	if !ok {
		log.Fatalf("unknown workload %q", *name)
	}
	tr, err := w.Trace()
	if err != nil {
		log.Fatal(err)
	}
	text, err := w.Text()
	if err != nil {
		log.Fatal(err)
	}
	code, err := ccrp.PreselectedCode()
	if err != nil {
		log.Fatal(err)
	}

	t := &tablefmt.Table{
		Title:   fmt.Sprintf("%s - relative performance by cache size and memory model", w.Name),
		Headers: []string{"Cache", "Miss Rate", "EPROM", "Burst EPROM", "DRAM", "Traffic"},
	}
	for _, cs := range []int{256, 512, 1024, 2048, 4096} {
		row := []string{fmt.Sprintf("%d", cs)}
		var miss, traffic float64
		for _, mem := range ccrp.MemoryModels() {
			cmp, err := ccrp.Compare(tr, text, ccrp.SystemConfig{
				CacheBytes: cs,
				Mem:        mem,
				Codes:      []*ccrp.Code{code},
			})
			if err != nil {
				log.Fatal(err)
			}
			miss, traffic = cmp.MissRate(), cmp.TrafficRatio()
			if len(row) == 1 {
				row = append(row, tablefmt.Pct(miss))
			}
			row = append(row, tablefmt.Ratio(cmp.RelativePerformance()))
		}
		row = append(row, tablefmt.Pct(traffic))
		t.AddRow(row...)
	}
	fmt.Println(t.String())
	fmt.Println("Values are CCRP cycles / standard cycles: below 1.0 the CCRP is faster.")
}
