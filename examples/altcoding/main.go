// altcoding demonstrates the LineCodec extension point: the same CCRP
// pipeline (block-bounded compression, raw bypass, LAT, streaming refill,
// trace-driven comparison) run under two interchangeable encodings — the
// paper's preselected byte-Huffman code and the CodePack-style halfword
// dictionary scheme the field later adopted.
package main

import (
	"fmt"
	"log"

	"ccrp"
)

func main() {
	w, ok := ccrp.WorkloadByName("espresso")
	if !ok {
		log.Fatal("espresso workload missing")
	}
	tr, err := w.Trace()
	if err != nil {
		log.Fatal(err)
	}
	text, err := w.Text()
	if err != nil {
		log.Fatal(err)
	}

	// Scheme 1: the paper's preselected byte-Huffman code.
	byteCode, err := ccrp.PreselectedCode()
	if err != nil {
		log.Fatal(err)
	}

	// Scheme 2: a CodePack-style coder trained on the same corpus.
	var corpus [][]byte
	for _, cw := range ccrp.Figure5Workloads() {
		t, err := cw.Text()
		if err != nil {
			log.Fatal(err)
		}
		corpus = append(corpus, t)
	}
	cp, err := ccrp.TrainCodePack(corpus...)
	if err != nil {
		log.Fatal(err)
	}

	schemes := []struct {
		name string
		opts ccrp.ROMOptions
		cfg  func(mem ccrp.MemoryModel) ccrp.SystemConfig
	}{
		{
			name: "byte-Huffman (paper)",
			opts: ccrp.ROMOptions{Codes: []*ccrp.Code{byteCode}},
			cfg: func(mem ccrp.MemoryModel) ccrp.SystemConfig {
				return ccrp.SystemConfig{CacheBytes: 256, Mem: mem, Codes: []*ccrp.Code{byteCode}}
			},
		},
		{
			name: "CodePack-style",
			opts: ccrp.ROMOptions{Codec: cp},
			cfg: func(mem ccrp.MemoryModel) ccrp.SystemConfig {
				return ccrp.SystemConfig{CacheBytes: 256, Mem: mem, Codec: cp}
			},
		},
	}

	fmt.Printf("espresso (%d bytes of code), 256B cache:\n\n", len(text))
	for _, s := range schemes {
		rom, err := ccrp.BuildROM(text, s.opts)
		if err != nil {
			log.Fatal(err)
		}
		if err := rom.Verify(); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%s: ROM %.1f%% of original, %d/%d raw lines\n",
			s.name, 100*rom.Ratio(), rom.RawLines(), len(rom.Lines))
		for _, mem := range []ccrp.MemoryModel{ccrp.EPROM(), ccrp.BurstEPROM()} {
			cmp, err := ccrp.Compare(tr, text, s.cfg(mem))
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("  %-12s relative performance %.3f, traffic %.1f%%\n",
				mem.Name(), cmp.RelativePerformance(), 100*cmp.TrafficRatio())
		}
		fmt.Println()
	}
	fmt.Println("Same pipeline, swap the coder: the halfword-dictionary scheme")
	fmt.Println("compresses better at the same refill cost, which is why it is")
	fmt.Println("what this line of research became (IBM CodePack, 1998).")
}
