// paging demonstrates the paper's §5 conjecture — "there may be some
// benefit to implementing similar methods for demand-paged virtual
// memory as well" — by paging a large workload's code from a compressed
// backing store through a small frame pool, on a transfer-bound flash
// device and a seek-bound disk.
package main

import (
	"fmt"
	"log"

	"ccrp"
)

func main() {
	w, ok := ccrp.WorkloadByName("espresso")
	if !ok {
		log.Fatal("espresso workload missing")
	}
	tr, err := w.Trace()
	if err != nil {
		log.Fatal(err)
	}
	text, err := w.Text()
	if err != nil {
		log.Fatal(err)
	}
	code, err := ccrp.PreselectedCode()
	if err != nil {
		log.Fatal(err)
	}

	store, err := ccrp.BuildPageStore(text, code, 4096)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("espresso code: %d pages of 4KB, stored at %.1f%% of original\n\n",
		store.Pages(), 100*store.Ratio())

	fmt.Println("Frame pool  Device  Faults  Transfer saved  Fault-time ratio")
	for _, dev := range []ccrp.PagingDevice{ccrp.FlashDevice(), ccrp.DiskDevice()} {
		for _, frames := range []int{4, 8} {
			res, err := ccrp.SimulatePaging(tr, text, code, 4096, frames, dev)
			if err != nil {
				log.Fatal(err)
			}
			saved := 1 - float64(res.Compressed.TransferBytes)/float64(res.Standard.TransferBytes)
			fmt.Printf("%10d  %-6s  %6d  %13.1f%%  %16.3f\n",
				frames, dev.Name, res.Compressed.Faults, 100*saved, res.CycleRatio())
		}
	}
	fmt.Println("\nThe same tradeoff as the cache refill engine, one level down the")
	fmt.Println("hierarchy: where transfer dominates (flash), compression cuts fault")
	fmt.Println("time by the compression ratio; where seek latency dominates (disk),")
	fmt.Println("the win shrinks but never inverts — decode overlaps the transfer.")
}
