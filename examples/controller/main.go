// controller is the paper's motivating scenario end to end: an automobile
// engine controller on an embedded R2000. The control program (ignition
// advance from an RPM/load map with interpolation, plus a knock-retard
// loop) is assembled, executed for a simulated burst of engine cycles,
// and then evaluated as a CCRP: how much EPROM does compression save, and
// what does it do to control-loop latency on cheap EPROM parts?
package main

import (
	"fmt"
	"log"
	"os"

	"ccrp"
)

const controller = `
	.equ CYCLES, 4000
	.data
# 8x8 ignition advance map, degrees BTDC (rows: RPM bands, cols: load).
advmap:
	.byte 10, 12, 14, 16, 18, 20, 22, 24
	.byte 11, 13, 15, 17, 19, 21, 23, 25
	.byte 12, 14, 16, 18, 21, 23, 25, 27
	.byte 13, 15, 18, 20, 23, 25, 28, 30
	.byte 14, 16, 19, 22, 25, 28, 31, 33
	.byte 15, 17, 20, 23, 27, 30, 33, 36
	.byte 15, 18, 21, 24, 28, 32, 35, 38
	.byte 16, 18, 22, 25, 29, 33, 36, 40
state:
	.word 0          # knock retard, tenths of a degree
total:
	.word 0          # accumulated commanded advance (for the checksum)
rng_state:
	.word 9241
	.text
__start:
	jal control_burst
	nop
	la $t0, total
	lw $a0, 0($t0)
	nop
	li $v0, 1
	syscall
	li $a0, '\n'
	li $v0, 11
	syscall
	li $v0, 10
	syscall

# control_burst: run CYCLES iterations of the control loop.
control_burst:
	addiu $sp, $sp, -8
	sw $ra, 0($sp)
	li $s0, 0
cb_loop:
	jal read_sensors        # $v0 = rpm band<<8 | load band (synthetic ADC)
	nop
	srl $a0, $v0, 8
	andi $a0, $a0, 7        # rpm band
	andi $a1, $v0, 7        # load band
	jal lookup_advance      # $v0 = base advance
	nop
	move $s1, $v0
	jal knock_loop          # $v0 = retard tenths
	nop
	# commanded = base*10 - retard
	li $t0, 10
	mul $s1, $s1, $t0
	subu $s1, $s1, $v0
	la $t1, total
	lw $t2, 0($t1)
	nop
	addu $t2, $t2, $s1
	sw $t2, 0($t1)
	addiu $s0, $s0, 1
	li $t3, CYCLES
	blt $s0, $t3, cb_loop
	nop
	lw $ra, 0($sp)
	nop
	addiu $sp, $sp, 8
	jr $ra
	nop

# read_sensors: a little LCG standing in for the ADC.
read_sensors:
	la $t8, rng_state
	lw $v0, 0($t8)
	lui $t9, 0x41C6
	ori $t9, $t9, 0x4E6D
	mult $v0, $t9
	mflo $v0
	addiu $v0, $v0, 12345
	sw $v0, 0($t8)
	srl $v0, $v0, 13
	jr $ra
	nop

# lookup_advance(rpmBand, loadBand): bilinear-flavored map lookup.
lookup_advance:
	sll $t0, $a0, 3
	addu $t0, $t0, $a1
	la $t1, advmap
	addu $t1, $t1, $t0
	lbu $v0, 0($t1)
	nop
	# blend with the neighboring load cell when not at the edge
	li $t2, 7
	beq $a1, $t2, la_done
	nop
	lbu $t3, 1($t1)
	nop
	addu $v0, $v0, $t3
	srl $v0, $v0, 1
la_done:
	jr $ra
	nop

# knock_loop: decay any accumulated retard, occasionally add some.
knock_loop:
	la $t0, state
	lw $t1, 0($t0)
	la $t8, rng_state
	lw $t2, 0($t8)
	andi $t3, $t2, 63
	bnez $t3, kl_decay      # knock event 1 time in 64
	nop
	addiu $t1, $t1, 30      # retard 3.0 degrees on knock
kl_decay:
	blez $t1, kl_store
	nop
	addiu $t1, $t1, -1      # decay a tenth per cycle
kl_store:
	sw $t1, 0($t0)
	move $v0, $t1
	jr $ra
	nop
`

func main() {
	fmt.Println("-- engine controller burst --")
	res, err := ccrp.RunProgram("controller", controller, os.Stdout)
	if err != nil {
		log.Fatal(err)
	}
	prog, err := ccrp.Assemble("controller", controller)
	if err != nil {
		log.Fatal(err)
	}
	code, err := ccrp.PreselectedCode()
	if err != nil {
		log.Fatal(err)
	}
	rom, err := ccrp.BuildROM(prog.Text, ccrp.ROMOptions{Codes: []*ccrp.Code{code}})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("control code: %d bytes -> %d bytes of EPROM (%.1f%%)\n\n",
		rom.OriginalSize, rom.CompressedSize(), 100*rom.Ratio())

	// An engine controller ships with the cheapest parts that meet the
	// deadline: compare loop latency on plain EPROM vs burst EPROM.
	for _, mem := range []ccrp.MemoryModel{ccrp.EPROM(), ccrp.BurstEPROM()} {
		cmp, err := ccrp.Compare(res.Trace, prog.Text, ccrp.SystemConfig{
			CacheBytes: 256, // a small on-chip cache, i960KA-style
			Mem:        mem,
			Codes:      []*ccrp.Code{code},
		})
		if err != nil {
			log.Fatal(err)
		}
		perLoopStd := float64(cmp.Standard.Cycles) / 4000
		perLoopCCRP := float64(cmp.CCRP.Cycles) / 4000
		fmt.Printf("%-12s control loop: standard %.0f cycles, CCRP %.0f cycles (rel %.3f)\n",
			mem.Name(), perLoopStd, perLoopCCRP, cmp.RelativePerformance())
	}
	fmt.Println("\nOn plain EPROM the compressed controller is no slower — the smaller")
	fmt.Println("ROM pays for itself; see EXPERIMENTS.md for the full study.")
}
