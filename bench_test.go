package ccrp

// The benchmark harness: one testing.B benchmark per table and figure of
// the paper's evaluation, regenerating the corresponding rows (see
// DESIGN.md's experiment index). Run everything with
//
//	go test -bench=. -benchmem
//
// The per-table benchmarks report rows/op so throughput is comparable
// across tables. Paper-vs-measured values live in EXPERIMENTS.md.

import (
	"io"
	"testing"

	"ccrp/internal/experiments"
	"ccrp/internal/memory"
)

// benchTable runs the Table 1-8 sweep for one program.
func benchTable(b *testing.B, program string) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		rows := 0
		models := []memory.Model{memory.EPROM{}, memory.BurstEPROM{}}
		if program == "matrix25a" {
			models = append(models, memory.SCDRAM{})
		}
		for _, mem := range models {
			for _, cs := range experiments.CacheSizes {
				pt, err := experiments.Point(program, cs, 16, mem, 1.0)
				if err != nil {
					b.Fatal(err)
				}
				if pt.RelPerf <= 0 {
					b.Fatal("bad point")
				}
				rows++
			}
		}
		b.ReportMetric(float64(rows), "rows")
	}
}

func BenchmarkFigure5Compression(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Figure5()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(len(rows)), "rows")
	}
}

func BenchmarkFigure1Alignment(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Figure1Alignment()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(len(rows)), "rows")
	}
}

func BenchmarkFigure2LineAddresses(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_, comp, err := experiments.Figure2Addresses("eightq", 14)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(len(comp)), "rows")
	}
}

func BenchmarkTable1NASA7(b *testing.B)     { benchTable(b, "nasa7") }
func BenchmarkTable2Matrix25A(b *testing.B) { benchTable(b, "matrix25a") }
func BenchmarkTable3Fpppp(b *testing.B)     { benchTable(b, "fpppp") }
func BenchmarkTable4Espresso(b *testing.B)  { benchTable(b, "espresso") }
func BenchmarkTable5NASA1(b *testing.B)     { benchTable(b, "nasa1") }
func BenchmarkTable6Eightq(b *testing.B)    { benchTable(b, "eightq") }
func BenchmarkTable7Tomcatv(b *testing.B)   { benchTable(b, "tomcatv") }
func BenchmarkTable8Lloop01(b *testing.B)   { benchTable(b, "lloop01") }

func BenchmarkTable9CLBSweepNASA7(b *testing.B) {
	benchCLB(b, "nasa7")
}

func BenchmarkTable10CLBSweepEspresso(b *testing.B) {
	benchCLB(b, "espresso")
}

func benchCLB(b *testing.B, program string) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		rows := 0
		for _, mem := range []memory.Model{memory.EPROM{}, memory.BurstEPROM{}} {
			for _, cs := range experiments.CacheSizes {
				for _, clb := range experiments.CLBSizes {
					if _, err := experiments.Point(program, cs, clb, mem, 1.0); err != nil {
						b.Fatal(err)
					}
					rows++
				}
			}
		}
		b.ReportMetric(float64(rows), "rows")
	}
}

func BenchmarkFigure9Scatter(b *testing.B) {
	for i := 0; i < b.N; i++ {
		pts, err := experiments.Figure9()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(len(pts)), "points")
	}
}

func BenchmarkTables11to13DataCache(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Tables11to13()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(len(res)), "tables")
	}
}

func BenchmarkAblationLAT(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.LATAblation(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationMultiCode(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.MultiCodeAblation(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationOverlap(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.OverlapAblation("espresso"); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationISA(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.ISAAblation(); err != nil {
			b.Fatal(err)
		}
	}
}

// End-to-end pipeline throughput: assemble, simulate, compress, compare.
func BenchmarkEndToEndPipeline(b *testing.B) {
	code, err := PreselectedCode()
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		res, err := RunProgram("bench", testProgram, io.Discard)
		if err != nil {
			b.Fatal(err)
		}
		prog, err := Assemble("bench", testProgram)
		if err != nil {
			b.Fatal(err)
		}
		cmp, err := Compare(res.Trace, prog.Text, SystemConfig{
			CacheBytes: 256, Mem: EPROM(), Codes: []*Code{code},
		})
		if err != nil {
			b.Fatal(err)
		}
		if cmp.RelativePerformance() <= 0 {
			b.Fatal("bad comparison")
		}
	}
}

func BenchmarkExtensionCodePack(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.CodePackStudy()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(len(rows)), "rows")
	}
}

func BenchmarkExtensionPaging(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.PagingStudy()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(len(rows)), "rows")
	}
}

func BenchmarkExtensionDecodeRate(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.DecodeRateAblation("espresso"); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkExtensionBlockSize(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.BlockSizeAblation(); err != nil {
			b.Fatal(err)
		}
	}
}
