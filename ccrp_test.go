package ccrp

import (
	"bytes"
	"strings"
	"testing"

	"ccrp/internal/core"
)

const testProgram = `
	.data
greeting:
	.asciiz "hello, CCRP\n"
	.text
__start:
	la $a0, greeting
	li $v0, 4
	syscall
	li $t0, 0
	li $t1, 10
sum:
	addu $t0, $t0, $t1
	addiu $t1, $t1, -1
	bgtz $t1, sum
	nop
	move $a0, $t0
	li $v0, 1
	syscall
	li $v0, 10
	syscall
`

func TestPublicAPIEndToEnd(t *testing.T) {
	var out bytes.Buffer
	res, err := RunProgram("api-test", testProgram, &out)
	if err != nil {
		t.Fatal(err)
	}
	if out.String() != "hello, CCRP\n55" {
		t.Errorf("output = %q", out.String())
	}
	if res.Trace == nil || res.Instructions == 0 {
		t.Fatal("no trace collected")
	}

	prog, err := Assemble("api-test", testProgram)
	if err != nil {
		t.Fatal(err)
	}
	code, err := PreselectedCode()
	if err != nil {
		t.Fatal(err)
	}
	rom, err := BuildROM(prog.Text, ROMOptions{Codes: []*Code{code}})
	if err != nil {
		t.Fatal(err)
	}
	if err := rom.Verify(); err != nil {
		t.Fatal(err)
	}
	if rom.Ratio() >= 1 {
		t.Errorf("program did not compress: %.3f", rom.Ratio())
	}

	for _, mem := range MemoryModels() {
		cmp, err := Compare(res.Trace, prog.Text, SystemConfig{
			CacheBytes: 256,
			Mem:        mem,
			Codes:      []*Code{code},
		})
		if err != nil {
			t.Fatal(err)
		}
		if cmp.TrafficRatio() >= 1 {
			t.Errorf("%s: traffic not reduced", mem.Name())
		}
	}
}

func TestPublicCodeBuilders(t *testing.T) {
	h := HistogramOf([]byte("the quick brown fox"), []byte("jumps over"))
	bounded, err := BuildBoundedCode(h, HuffmanBound)
	if err != nil {
		t.Fatal(err)
	}
	if bounded.MaxLen() > HuffmanBound {
		t.Errorf("bound violated: %d", bounded.MaxLen())
	}
	trad, err := BuildTraditionalCode(h)
	if err != nil {
		t.Fatal(err)
	}
	if trad.MaxLen() == 0 {
		t.Error("empty traditional code")
	}
}

func TestPublicWorkloads(t *testing.T) {
	if len(Workloads()) != 14 {
		t.Errorf("workloads = %d", len(Workloads()))
	}
	if len(Figure5Workloads()) != 10 {
		t.Errorf("figure 5 workloads = %d", len(Figure5Workloads()))
	}
	w, ok := WorkloadByName("espresso")
	if !ok {
		t.Fatal("espresso missing")
	}
	tr, err := w.Trace()
	if err != nil {
		t.Fatal(err)
	}
	if tr.Instructions() == 0 {
		t.Error("empty espresso trace")
	}
	if EPROM().Name() != "EPROM" || BurstEPROM().Name() != "Burst EPROM" || SCDRAM().Name() != "DRAM" {
		t.Error("memory model constructors wrong")
	}
	if LineSize != 32 {
		t.Errorf("LineSize = %d", LineSize)
	}
}

func TestPublicExperimentEntryPoints(t *testing.T) {
	rows, err := Figure5()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 11 {
		t.Errorf("figure 5 rows = %d", len(rows))
	}
	pts, err := Tables11to13()
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 3 {
		t.Errorf("tables 11-13 programs = %d", len(pts))
	}
}

func TestRenderAllSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("full render is expensive")
	}
	var b strings.Builder
	if err := RenderAll(&b); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"Figure 5", "Table 1", "Table 8", "Table 13", "Figure 9", "Ablation"} {
		if !strings.Contains(b.String(), want) {
			t.Errorf("RenderAll output missing %q", want)
		}
	}
}

// The paper's transparency claim, end to end: compress a program into a
// ROM image, serialize it, reload it, decompress the text through the
// (software twin of the) refill datapath, and execute the reconstructed
// program — output must be identical to the original run.
func TestROMReconstructedProgramExecutesIdentically(t *testing.T) {
	code, err := PreselectedCode()
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"eightq", "xlisp", "fpppp"} {
		w, ok := WorkloadByName(name)
		if !ok {
			t.Fatalf("workload %s missing", name)
		}
		prog, err := w.Program()
		if err != nil {
			t.Fatal(err)
		}
		_, wantOut, err := w.Run()
		if err != nil {
			t.Fatal(err)
		}
		rom, err := BuildROM(prog.Text, ROMOptions{Codes: []*Code{code}})
		if err != nil {
			t.Fatal(err)
		}
		var file bytes.Buffer
		if err := rom.WriteFile(&file); err != nil {
			t.Fatal(err)
		}
		reloaded, err := core.ReadROMFile(&file)
		if err != nil {
			t.Fatal(err)
		}
		rebuilt := &Program{
			Name:    name + "-from-rom",
			Text:    reloaded.Text()[:len(prog.Text)],
			Data:    prog.Data,
			Entry:   prog.Entry,
			Symbols: map[string]uint32{},
		}
		var out bytes.Buffer
		m := NewMachine(rebuilt, SimConfig{Stdout: &out, MaxInstr: 8_000_000})
		if _, err := m.Run(); err != nil {
			t.Fatalf("%s from ROM: %v", name, err)
		}
		if out.String() != wantOut {
			t.Errorf("%s: ROM-reconstructed output %q != original %q", name, out.String(), wantOut)
		}
	}
}

func TestCodecFacade(t *testing.T) {
	code, err := PreselectedCode()
	if err != nil {
		t.Fatal(err)
	}
	w, _ := WorkloadByName("eightq")
	text, err := w.Text()
	if err != nil {
		t.Fatal(err)
	}
	hc := NewHuffmanCodec(code)
	rom, err := BuildROM(text, ROMOptions{Codec: hc})
	if err != nil {
		t.Fatal(err)
	}
	if err := rom.Verify(); err != nil {
		t.Fatal(err)
	}
	// The codec wrapper must produce the same block sizes as the direct
	// single-code path.
	direct, err := BuildROM(text, ROMOptions{Codes: []*Code{code}})
	if err != nil {
		t.Fatal(err)
	}
	if rom.BlocksSize() != direct.BlocksSize() {
		t.Errorf("codec wrapper blocks %d != direct %d", rom.BlocksSize(), direct.BlocksSize())
	}

	cp, err := TrainCodePack(text)
	if err != nil {
		t.Fatal(err)
	}
	cpROM, err := BuildROM(text, ROMOptions{Codec: cp})
	if err != nil {
		t.Fatal(err)
	}
	if err := cpROM.Verify(); err != nil {
		t.Fatal(err)
	}
	if cpROM.Ratio() >= rom.Ratio() {
		t.Errorf("self-trained codepack %.3f not better than corpus huffman %.3f",
			cpROM.Ratio(), rom.Ratio())
	}
}

func TestPagingFacade(t *testing.T) {
	code, err := PreselectedCode()
	if err != nil {
		t.Fatal(err)
	}
	w, _ := WorkloadByName("eightq")
	tr, err := w.Trace()
	if err != nil {
		t.Fatal(err)
	}
	text, err := w.Text()
	if err != nil {
		t.Fatal(err)
	}
	store, err := BuildPageStore(text, code, 1024)
	if err != nil {
		t.Fatal(err)
	}
	if store.Ratio() >= 1 {
		t.Errorf("page store ratio %.3f", store.Ratio())
	}
	res, err := SimulatePaging(tr, text, code, 1024, 2, FlashDevice())
	if err != nil {
		t.Fatal(err)
	}
	if res.Compressed.Faults == 0 || res.CycleRatio() >= 1 {
		t.Errorf("paging facade: faults=%d ratio=%.3f", res.Compressed.Faults, res.CycleRatio())
	}
	if DiskDevice().Name != "disk" {
		t.Error("device constructors wrong")
	}
}
